package controller

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/dsrhaslab/sdscale/internal/controlalg"
	"github.com/dsrhaslab/sdscale/internal/cyclemem"
	"github.com/dsrhaslab/sdscale/internal/metrics"
	"github.com/dsrhaslab/sdscale/internal/monitor"
	"github.com/dsrhaslab/sdscale/internal/rpc"
	"github.com/dsrhaslab/sdscale/internal/stage"
	"github.com/dsrhaslab/sdscale/internal/store"
	"github.com/dsrhaslab/sdscale/internal/telemetry"
	"github.com/dsrhaslab/sdscale/internal/trace"
	"github.com/dsrhaslab/sdscale/internal/transport"
	"github.com/dsrhaslab/sdscale/internal/wire"
)

// ErrNoChildren is returned by RunCycle when the controller manages nothing.
var ErrNoChildren = errors.New("controller: no children to manage")

// GlobalConfig configures a global controller.
type GlobalConfig struct {
	// Network is the transport used to dial children (and to listen for
	// registrations when ListenAddr is set).
	Network transport.Network
	// ListenAddr, if non-empty, starts a registration endpoint where
	// stages announce themselves for dynamic membership (flat design).
	ListenAddr string
	// Algorithm is the control algorithm run in the compute phase. Nil
	// selects PSFA.
	Algorithm controlalg.Algorithm
	// Capacity is the administrator-configured maximum operation rate of
	// the shared PFS, per class (paper §III-C).
	Capacity wire.Rates
	// FanOut bounds the controller's request-dispatch parallelism. Zero
	// selects DefaultFanOut. It only bounds the collect/enforce phases in
	// FanOutBlocking mode; probes, health sweeps, and adoption dials always
	// honor it.
	FanOut int
	// FanOutMode selects the collect/enforce dispatch strategy: the zero
	// value, FanOutPipelined, streams all child requests back-to-back over
	// the per-child connections and harvests responses as they arrive;
	// FanOutBlocking restores the paper prototype's bounded blocking pool
	// (one parked goroutine per call, FanOut wide), which the
	// paper-reproduction presets select explicitly.
	FanOutMode FanOutMode
	// CallTimeout bounds each child RPC. Zero selects 10 seconds.
	CallTimeout time.Duration
	// MaxCodec caps the wire codec version the controller negotiates, on
	// both its registration endpoint and its child connections. Zero selects
	// the newest supported version; 1 pins the legacy v1 codec.
	MaxCodec int
	// MaxFailures is the consecutive-failure threshold that trips a
	// child's circuit breaker into quarantine. Zero selects
	// DefaultMaxFailures.
	MaxFailures int
	// ProbeInterval is the base interval between half-open heartbeat
	// probes to a quarantined child; it doubles after each failed probe up
	// to MaxProbeInterval. Zeros select DefaultProbeInterval and
	// DefaultMaxProbeInterval.
	ProbeInterval    time.Duration
	MaxProbeInterval time.Duration
	// StaleAfter bounds how old a quarantined child's last-known report
	// may be and still feed a degraded cycle. Zero selects
	// DefaultStaleAfter.
	StaleAfter time.Duration
	// EvictAfter, if positive, permanently evicts a child that has been
	// quarantined for this long without passing a probe. Zero (the
	// default) never evicts: a child that recovers is always readmitted.
	EvictAfter time.Duration
	// DeltaEnforcement skips the enforce message to a child whose rules
	// did not change since the last cycle. The paper's stress workload
	// deliberately re-enforces everything every cycle (§III-C), so the
	// reproduction experiments leave this off; the ablation benchmarks
	// quantify what delta enforcement would save for stable workloads.
	DeltaEnforcement bool
	// Incremental switches the flat control cycle to the event-driven
	// path: stages push report deltas when their rates move (see
	// stage.Config.PushThreshold), the controller folds them into a
	// per-child report cache and dirty set, and each cycle explicitly
	// collects only the edge cases — children that never reported, whose
	// cache aged past IncrementalFloor, that re-registered or were
	// readmitted from quarantine, or that negotiated the v1 codec (which
	// cannot carry pushes and so keeps the paper-faithful per-cycle
	// collect). When nothing is dirty the whole cycle short-circuits.
	// Incremental mode implies delta enforcement and requires
	// FanOutPipelined; with FanOutBlocking — the paper-reproduction
	// configuration — the full cycle runs unchanged. Hierarchical
	// topologies also keep the full cycle: aggregator children answer
	// collects from their own caches instead (AggregatorConfig.Incremental).
	Incremental bool
	// IncrementalFloor bounds how old a child's cached report may grow
	// before an incremental cycle collects from it explicitly — the
	// heartbeat floor that makes a silent child distinguishable from an
	// unchanged one. It must exceed the stage-side push floor
	// (stage.Config.PushFloor), or live children get pointlessly
	// re-collected. Zero selects StaleAfter.
	IncrementalFloor time.Duration
	// Delegated enables the §VI delegated hierarchy: instead of computing
	// and shipping per-stage rules, the controller ships per-job capacity
	// budgets to each aggregator (payload O(jobs) instead of O(stages))
	// and the aggregators — which must run with
	// AggregatorConfig.LocalControl — compute the per-stage rules
	// themselves. Hierarchical topologies only.
	Delegated bool
	// Meter, if non-nil, is charged with all the controller's traffic.
	Meter *transport.Meter
	// CPU, if non-nil, is charged with the controller's busy time.
	CPU *monitor.CPUMeter
	// Tracer, if non-nil, records control-cycle spans: one root span per
	// cycle, one per phase, and one per child RPC (tagged with the child's
	// ID). The tracer carries per-phase cycle context, so it must be
	// exclusive to this controller.
	Tracer *trace.Tracer
	// Logf, if non-nil, receives operational logs.
	Logf func(format string, args ...any)

	// Epoch is the controller's initial leadership epoch. Leave zero for
	// deployments without a standby; with one, the primary conventionally
	// starts at 1 and a promoting standby always bumps past the highest
	// epoch it mirrored.
	Epoch uint64
	// ID identifies this controller in quorum vote traffic and StateSync
	// PrimaryID fields. Controllers in one quorum should carry distinct
	// IDs; zero is accepted for single-controller deployments.
	ID uint64
	// StandbyAddr, if non-empty, is the warm standby's registration
	// address: the controller replicates its state there every
	// SyncInterval, which doubles as the leadership lease renewal.
	// Shorthand for a one-element StandbyAddrs.
	StandbyAddr string
	// StandbyAddrs lists the registration addresses of every other
	// controller in the leadership quorum. A primary replicates state to
	// all of them each SyncInterval; a standby whose lease expires asks
	// all of them for votes and promotes only on a majority of the quorum
	// (the addressed controllers plus itself). A standby with an empty
	// list keeps the single-standby behaviour: promote directly on lease
	// expiry.
	StandbyAddrs []string
	// Store, if non-nil, is the controller's durability layer: mutations
	// (membership, enforced rules, job weights, leadership epochs and
	// votes) are appended to its write-ahead log before they are acked,
	// and Recover rebuilds a cold-started controller from it. The
	// controller takes ownership and closes it on Close.
	Store *store.Store
	// Standby makes this controller a passive warm standby: it accepts
	// StateSync from the primary (mirroring membership, last rules, and
	// job weights), rejects registrations with CodeNotLeader, and
	// promotes itself with a bumped epoch when the lease expires. Requires
	// ListenAddr.
	Standby bool
	// LeaseTimeout is how long a standby waits without a StateSync before
	// promoting itself (and the lease duration a primary grants with each
	// sync). Zero selects DefaultLeaseTimeout.
	LeaseTimeout time.Duration
	// SyncInterval is how often a primary replicates state to
	// StandbyAddr. Zero selects DefaultSyncInterval.
	SyncInterval time.Duration
}

func (c GlobalConfig) withDefaults() GlobalConfig {
	if c.Algorithm == nil {
		c.Algorithm = controlalg.PSFA{}
	}
	if c.FanOut <= 0 {
		c.FanOut = DefaultFanOut
	}
	if c.CallTimeout <= 0 {
		c.CallTimeout = 10 * time.Second
	}
	if c.MaxFailures <= 0 {
		c.MaxFailures = DefaultMaxFailures
	}
	if c.SyncInterval <= 0 {
		c.SyncInterval = DefaultSyncInterval
	}
	if c.LeaseTimeout <= 0 {
		c.LeaseTimeout = DefaultLeaseTimeout
	}
	if c.StandbyAddr != "" {
		found := false
		for _, a := range c.StandbyAddrs {
			if a == c.StandbyAddr {
				found = true
				break
			}
		}
		if !found {
			c.StandbyAddrs = append([]string{c.StandbyAddr}, c.StandbyAddrs...)
		}
	}
	return c
}

// Global is the top-level controller. Its children are either stages (flat
// design) or aggregators (hierarchical design); mixing is rejected.
type Global struct {
	cfg      GlobalConfig
	breaker  breakerConfig
	members  *memberSet
	recorder *telemetry.CycleRecorder
	faults   *telemetry.FaultCounters
	pipe     *telemetry.PipelineStats
	regSrv   *rpc.Server

	// Primary-side state-sync loop (StandbyAddr set).
	syncCancel context.CancelFunc
	syncDone   chan struct{}

	// Cycle-serial state, owned by the goroutine running RunCycle: the
	// prepare-phase scratch slices and the incremental-mode progress marks
	// (incrReady is set once a full compute+enforce pass completed, and
	// incrMembers is the membership epoch that pass covered — the fast path
	// requires both, so a membership change always forces a recompute).
	scratch     cycleScratch
	incrReady   bool
	incrMembers uint64

	// arena is the per-cycle allocator: RunCycle begins a generation, and
	// every cycle-lifetime buffer — reply slots, harvested reports, rule
	// batches, enforce messages, call handles, the rule table — is drawn
	// from these slabs, which reset (retaining capacity) instead of
	// freeing. Cycle-serial, like scratch.
	arena cyclemem.Arena
	cyc   cycleMem

	// statsScr backs Stats() snapshots (guarded by its own mutex).
	statsScr statsScratch

	mu         sync.Mutex
	cycle      uint64
	jobWeights map[uint64]float64
	lastJobs   []JobStatus
	mode       wire.Role // RoleStage or RoleAggregator once first child added
	callErrors uint64
	// capacity is the live copy of cfg.Capacity; SetCapacity retunes it on
	// a running controller (shard resizes re-split the global budget), so
	// compute phases read it under mu rather than from cfg.
	capacity wire.Rates
	// Leadership state (all under mu): epoch is the current leadership
	// term; deposed is set once a stale-epoch rejection proves a newer
	// leader exists; promoted marks a standby that has taken over;
	// votedEpoch is the highest epoch this controller promised a quorum
	// vote for (persisted through the store before any grant leaves the
	// process).
	epoch      uint64
	deposed    bool
	promoted   bool
	votedEpoch uint64
	// Standby mirror: the last StateSync received, the lease deadline it
	// renewed, and when it arrived. gapStart carries the control-gap
	// measurement from promotion to the first completed cycle.
	mirror      *wire.StateSync
	leaseUntil  time.Time
	lastSyncAt  time.Time
	gapStart    time.Time
	fencedSyncs uint64
	// Log-once latches for repeating operational conditions.
	defaultedLeaseLogged bool
	storeErrLogged       bool
	// shardTable, when set by the sharding layer, answers ShardQuery
	// requests on the registration endpoint and guards Register against
	// adopting another shard's child (see SetShardTable); shardSelf is the
	// shard this controller serves.
	shardTable func(childID uint64) *wire.ShardMap
	shardSelf  int
}

// StartGlobal launches a global controller with its registration endpoint
// listening. It is the primary entry point: cfg.ListenAddr defaults to ":0"
// (auto-assigned), so children can always register dynamically. Use
// NewGlobal directly only when the controller must not listen at all.
func StartGlobal(cfg GlobalConfig) (*Global, error) {
	if cfg.ListenAddr == "" {
		cfg.ListenAddr = ":0"
	}
	return NewGlobal(cfg)
}

// NewGlobal creates a global controller. If cfg.ListenAddr is set, a
// registration endpoint is started immediately; if it is empty the
// controller runs without one and children must be attached explicitly.
// Most callers want StartGlobal, which defaults the listener on.
func NewGlobal(cfg GlobalConfig) (*Global, error) {
	cfg = cfg.withDefaults()
	if cfg.Standby && cfg.ListenAddr == "" {
		return nil, errors.New("controller: a standby needs a ListenAddr to receive StateSync")
	}
	g := &Global{
		cfg: cfg,
		breaker: breakerConfig{
			MaxFailures:      cfg.MaxFailures,
			ProbeInterval:    cfg.ProbeInterval,
			MaxProbeInterval: cfg.MaxProbeInterval,
			StaleAfter:       cfg.StaleAfter,
			EvictAfter:       cfg.EvictAfter,
		}.withDefaults(),
		members:    newMemberSet(),
		recorder:   telemetry.NewCycleRecorder(),
		faults:     &telemetry.FaultCounters{},
		pipe:       &telemetry.PipelineStats{},
		jobWeights: make(map[uint64]float64),
		epoch:      cfg.Epoch,
		capacity:   cfg.Capacity,
	}
	if cfg.Store != nil {
		// The store's recovered epochs are a floor: this controller must
		// never lead with — or vote for — an epoch the disk has already
		// seen. (Recover additionally adopts the recovered state; here we
		// only refuse to regress.)
		rec := cfg.Store.Recovered()
		if rec.Epoch > g.epoch {
			g.epoch = rec.Epoch
		}
		g.votedEpoch = rec.VotedEpoch
		if !cfg.Standby && g.epoch > rec.Epoch {
			// A fresh primary with a configured epoch: fence it through
			// the store before leading with it.
			if err := cfg.Store.AppendEpoch(g.epoch); err != nil {
				return nil, fmt.Errorf("controller: persist initial epoch: %w", err)
			}
		}
	}
	if cfg.Standby {
		// A standby that never hears from a primary at all still promotes
		// once the initial lease runs out.
		g.leaseUntil = time.Now().Add(cfg.LeaseTimeout)
	}
	if cfg.ListenAddr != "" {
		srv, err := rpc.Serve(cfg.Network, cfg.ListenAddr, rpc.HandlerFunc(g.serveRegistration), rpc.ServerOptions{
			Meter:    cfg.Meter,
			Logf:     cfg.Logf,
			Tracer:   cfg.Tracer,
			MaxCodec: cfg.MaxCodec,
		})
		if err != nil {
			return nil, fmt.Errorf("controller: registration endpoint: %w", err)
		}
		g.regSrv = srv
	}
	if len(cfg.StandbyAddrs) > 0 && !cfg.Standby {
		g.startSync()
	}
	return g, nil
}

// storeFault logs a store append failure (once, then counts silently) —
// durability degrades, but the control plane keeps running: halting every
// cycle because the log disk died would turn a durability fault into an
// availability outage.
func (g *Global) storeFault(op string, err error) {
	g.mu.Lock()
	logged := g.storeErrLogged
	g.storeErrLogged = true
	g.mu.Unlock()
	if !logged {
		g.logf("controller: store: %s: %v (durability degraded; further store errors suppressed)", op, err)
	}
}

// logRules appends one child's just-enforced rule batch to the store.
func (g *Global) logRules(cycle, childID uint64, rules []wire.Rule) {
	if g.cfg.Store == nil || len(rules) == 0 {
		return
	}
	if err := g.cfg.Store.AppendRules(cycle, childID, rules); err != nil {
		g.storeFault("append rules", err)
	}
}

// logRegister appends a member registration to the store.
func (g *Global) logRegister(c *child) {
	if g.cfg.Store == nil {
		return
	}
	m := wire.MemberState{
		Role:   c.role,
		ID:     c.info.ID,
		JobID:  c.info.JobID,
		Weight: c.info.Weight,
		Addr:   c.info.Addr,
	}
	if stages := c.stageList(); len(stages) > 0 {
		m.Stages = make([]wire.StageEntry, len(stages))
		for k, s := range stages {
			m.Stages[k] = wire.StageEntry{ID: s.ID, JobID: s.JobID, Weight: s.Weight, Addr: s.Addr}
		}
	}
	if err := g.cfg.Store.AppendRegister(m); err != nil {
		g.storeFault("append register", err)
	}
}

// logEvict appends a member eviction to the store.
func (g *Global) logEvict(id uint64) {
	if g.cfg.Store == nil {
		return
	}
	if err := g.cfg.Store.AppendEvict(id); err != nil {
		g.storeFault("append evict", err)
	}
}

// Addr returns the registration endpoint address, or "" if none.
func (g *Global) Addr() string {
	if g.regSrv == nil {
		return ""
	}
	return g.regSrv.Addr().String()
}

// Recorder returns the controller's cycle-latency recorder.
func (g *Global) Recorder() *telemetry.CycleRecorder { return g.recorder }

// NumChildren returns the number of directly managed children.
func (g *Global) NumChildren() int { return g.members.size() }

// NumStages returns the number of stages managed across the whole control
// plane (directly in flat mode, through aggregators in hierarchical mode).
func (g *Global) NumStages() int {
	var n int
	for _, c := range g.members.snapshot() {
		if c.role == wire.RoleStage {
			n++
		} else {
			n += c.numStages()
		}
	}
	return n
}

// Faults returns the controller's fault-tolerance counters (quarantines,
// readmissions, degraded cycles, probes, stale-report ages).
func (g *Global) Faults() *telemetry.FaultCounters { return g.faults }

// NumQuarantined returns how many children currently sit behind a tripped
// circuit breaker.
//
// Deprecated: use Stats().Quarantined.
func (g *Global) NumQuarantined() int {
	_, quarantined := splitQuarantined(g.members.snapshot())
	return len(quarantined)
}

// QuarantinedIDs returns the IDs of the currently quarantined children.
//
// Deprecated: use Stats().QuarantinedIDs.
func (g *Global) QuarantinedIDs() []uint64 {
	return g.Stats().QuarantinedIDs
}

// Evictions returns how many quarantined children were permanently removed
// under the EvictAfter bound. With EvictAfter unset it stays zero: failing
// children are quarantined and readmitted, never evicted.
//
// Deprecated: use Stats().Evictions.
func (g *Global) Evictions() uint64 { return g.faults.Evictions() }

// CallErrors returns the cumulative count of failed child calls.
//
// Deprecated: use Stats().CallErrors.
func (g *Global) CallErrors() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.callErrors
}

func (g *Global) logf(format string, args ...any) {
	if g.cfg.Logf != nil {
		g.cfg.Logf(format, args...)
	}
}

// setMode fixes the topology kind on first use and rejects mixing.
func (g *Global) setMode(role wire.Role) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.mode == 0 {
		g.mode = role
		return nil
	}
	if g.mode != role {
		return fmt.Errorf("controller: cannot mix %s and %s children", g.mode, role)
	}
	return nil
}

// Mode returns the topology kind (RoleStage for flat, RoleAggregator for
// hierarchical), or 0 before any child is added.
func (g *Global) Mode() wire.Role {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.mode
}

// noteJob records a job's weight from a stage registration, logging actual
// changes to the store (re-registrations with an unchanged weight append
// nothing).
func (g *Global) noteJob(jobID uint64, weight float64) {
	if weight <= 0 {
		weight = 1
	}
	g.mu.Lock()
	old, known := g.jobWeights[jobID]
	g.jobWeights[jobID] = weight
	g.mu.Unlock()
	if g.cfg.Store != nil && (!known || old != weight) {
		if err := g.cfg.Store.AppendWeight(jobID, weight); err != nil {
			g.storeFault("append weight", err)
		}
	}
}

// AddStage connects the controller to a data-plane stage (flat design).
func (g *Global) AddStage(ctx context.Context, info stage.Info) error {
	if err := g.setMode(wire.RoleStage); err != nil {
		return err
	}
	cli, err := rpc.DialReconnecting(ctx, g.cfg.Network, info.Addr,
		rpc.DialOptions{Meter: g.cfg.Meter, CPU: g.cfg.CPU, Tracer: g.cfg.Tracer, SpanTag: info.ID,
			MaxCodec: g.cfg.MaxCodec, ReuseReplies: true, ReuseHits: g.pipe.ReuseCounter(),
			OnPush: g.onPush},
		g.breaker.reconnectPolicy())
	if err != nil {
		return fmt.Errorf("controller: dial stage %d at %s: %w", info.ID, info.Addr, err)
	}
	c := &child{info: info, role: wire.RoleStage, cli: cli}
	if !g.members.add(c) {
		cli.Close()
		return fmt.Errorf("controller: duplicate stage ID %d", info.ID)
	}
	g.logRegister(c)
	g.noteJob(info.JobID, info.Weight)
	return nil
}

// AddAggregator connects the controller to an aggregator (hierarchical
// design). stages lists the stages the aggregator manages; the global
// controller needs them because it computes rules for every stage (paper
// §IV-B) and must know each job's stage population.
func (g *Global) AddAggregator(ctx context.Context, id uint64, addr string, stages []stage.Info) error {
	if err := g.setMode(wire.RoleAggregator); err != nil {
		return err
	}
	cli, err := rpc.DialReconnecting(ctx, g.cfg.Network, addr,
		rpc.DialOptions{Meter: g.cfg.Meter, CPU: g.cfg.CPU, Tracer: g.cfg.Tracer, SpanTag: id,
			MaxCodec: g.cfg.MaxCodec, ReuseReplies: true, ReuseHits: g.pipe.ReuseCounter()},
		g.breaker.reconnectPolicy())
	if err != nil {
		return fmt.Errorf("controller: dial aggregator %d at %s: %w", id, addr, err)
	}
	c := &child{
		info:   stage.Info{ID: id, Addr: addr},
		role:   wire.RoleAggregator,
		cli:    cli,
		stages: append([]stage.Info(nil), stages...),
	}
	if !g.members.add(c) {
		cli.Close()
		return fmt.Errorf("controller: duplicate aggregator ID %d", id)
	}
	g.logRegister(c)
	for _, s := range stages {
		g.noteJob(s.JobID, s.Weight)
	}
	return nil
}

// AttachAggregator connects to a remotely deployed aggregator, queries the
// stages it manages, and adds it to the hierarchical control plane. It is
// the multi-host (sdsctl) counterpart of AddAggregator, which requires the
// stage list up front.
func (g *Global) AttachAggregator(ctx context.Context, id uint64, addr string) error {
	cli, err := rpc.Dial(ctx, g.cfg.Network, addr, rpc.DialOptions{Meter: g.cfg.Meter, MaxCodec: g.cfg.MaxCodec})
	if err != nil {
		return fmt.Errorf("controller: probe aggregator at %s: %w", addr, err)
	}
	resp, err := cli.Call(ctx, &wire.StageList{})
	cli.Close()
	if err != nil {
		return fmt.Errorf("controller: stage list from %s: %w", addr, err)
	}
	list, ok := resp.(*wire.StageListReply)
	if !ok {
		return fmt.Errorf("controller: unexpected %s from %s", resp.Type(), addr)
	}
	stages := make([]stage.Info, len(list.Stages))
	for i, s := range list.Stages {
		stages[i] = stage.Info{ID: s.ID, JobID: s.JobID, Weight: s.Weight, Addr: s.Addr}
	}
	return g.AddAggregator(ctx, id, addr, stages)
}

// RemoveChild evicts a child by ID, closing its connection.
func (g *Global) RemoveChild(id uint64) bool {
	c := g.members.remove(id)
	if c == nil {
		return false
	}
	c.client().Close()
	g.logEvict(id)
	return true
}

// serveRegistration handles the dynamic-membership endpoint: stages (and,
// in hierarchical mode, aggregators) register, the controller dials them
// back and adds them to the control plane. The same endpoint carries the
// primary→standby StateSync stream.
func (g *Global) serveRegistration(peer *rpc.Peer, req wire.Message) (wire.Message, error) {
	switch m := req.(type) {
	case *wire.Register:
		return g.handleRegister(m)
	case *wire.StateSync:
		return g.handleStateSync(m)
	case *wire.VoteRequest:
		return g.handleVoteRequest(m)
	case *wire.ShardQuery:
		return g.handleShardQuery(m)
	case *wire.Heartbeat:
		return &wire.HeartbeatAck{EchoUnixMicros: m.SentUnixMicros}, nil
	}
	return nil, fmt.Errorf("controller: unexpected %s", req.Type())
}

// handleRegister admits new children and treats a duplicate registration
// from a known child ID as a reconnect: the stale connection is replaced and
// the breaker state kept, so a child that rebooted — or re-homed to a
// promoted standby — resumes service without a second identity. Acks carry
// the leadership epoch, which re-homing children adopt as their fencing
// floor.
func (g *Global) handleRegister(m *wire.Register) (wire.Message, error) {
	g.mu.Lock()
	passive := g.cfg.Standby && !g.promoted
	epoch := g.epoch
	g.mu.Unlock()
	if passive {
		// An unpromoted standby is not the leader; children walk their
		// parent list and retry until promotion.
		return nil, &wire.ErrorReply{Code: wire.CodeNotLeader, Text: "standby has not been promoted", Epoch: epoch}
	}
	ctx, cancel := context.WithTimeout(context.Background(), g.cfg.CallTimeout)
	defer cancel()
	if c := g.members.get(m.ID); c != nil && c.role == m.Role {
		cli, err := rpc.DialReconnecting(ctx, g.cfg.Network, m.Addr,
			rpc.DialOptions{Meter: g.cfg.Meter, CPU: g.cfg.CPU, Tracer: g.cfg.Tracer, SpanTag: m.ID,
				MaxCodec: g.cfg.MaxCodec, ReuseReplies: true, ReuseHits: g.pipe.ReuseCounter(),
				OnPush: g.onPush},
			g.breaker.reconnectPolicy())
		if err != nil {
			return nil, fmt.Errorf("controller: redial %s %d at %s: %w", m.Role, m.ID, m.Addr, err)
		}
		c.replaceClient(cli)
		g.faults.ReRegistration()
		g.logf("controller: %s %d re-registered from %s", m.Role, m.ID, m.Addr)
		return &wire.RegisterAck{ID: m.ID, Epoch: g.Epoch()}, nil
	}
	switch m.Role {
	case wire.RoleStage:
		// In a sharded deployment the shard table decides who may adopt
		// this child. Without the guard, a registration retry that lags a
		// completed handoff would re-add the child here while the
		// destination shard owns it at a higher epoch — the child would
		// fence this shard's every call, reading as a deposition.
		if owner, ok := g.shardOwner(m.ID); !ok {
			return nil, &wire.ErrorReply{Code: wire.CodeNotLeader,
				Text: fmt.Sprintf("stage %d belongs to shard %d", m.ID, owner), Epoch: epoch}
		}
		info := stage.Info{ID: m.ID, JobID: m.JobID, Weight: m.Weight, Addr: m.Addr}
		if err := g.AddStage(ctx, info); err != nil {
			return nil, err
		}
	case wire.RoleAggregator:
		// Aggregators join dynamically only once the control plane is
		// already hierarchical (a promoted standby whose mirror held
		// aggregators): a fresh global does not let a child pick its
		// topology.
		if g.Mode() != wire.RoleAggregator {
			return nil, &wire.ErrorReply{Code: wire.CodeBadMessage, Text: "only stages may register dynamically"}
		}
		if err := g.AttachAggregator(ctx, m.ID, m.Addr); err != nil {
			return nil, err
		}
	default:
		return nil, &wire.ErrorReply{Code: wire.CodeBadMessage, Text: "only stages may register dynamically"}
	}
	g.logf("controller: %s %d registered from %s", m.Role, m.ID, m.Addr)
	return &wire.RegisterAck{ID: m.ID, Epoch: g.Epoch()}, nil
}

// callChild performs one child RPC with the configured timeout and
// circuit-breaker accounting. Errors caused by the caller's own ctx (a
// shutdown or cycle deadline mid-scatter) are excluded from both the error
// counter and the breaker, so healthy children collect no strikes.
func (g *Global) callChild(ctx context.Context, c *child, req wire.Message) (wire.Message, error) {
	cctx, cancel := context.WithTimeout(ctx, g.cfg.CallTimeout)
	resp, err := c.client().Call(cctx, req)
	cancel()
	g.accountCall(ctx, c, err)
	return resp, err
}

// accountCall applies a call outcome to the error counter, epoch fencing,
// and the circuit breaker. ctx is the caller's own context (not the per-call
// or phase deadline): errors it caused are excluded, so a shutdown
// mid-scatter charges no child a strike. It is the accounting half of
// callChild, shared with the pipelined fan-out path where the call itself
// happens elsewhere.
func (g *Global) accountCall(ctx context.Context, c *child, err error) {
	if err != nil && ctx.Err() == nil {
		g.mu.Lock()
		g.callErrors++
		g.mu.Unlock()
		if cur, ok := rpc.StaleEpochError(err); ok {
			// The child fenced us: a newer leader owns it. Stop leading.
			g.faults.FencedCall()
			g.stepDown(fmt.Sprintf("child %d fenced a call, current epoch is %d", c.info.ID, cur))
		}
	}
	recordCall(ctx, c, err, g.breaker, g.faults, g.logf, "controller")
}

// fanOut dispatches one cycle phase over the children using the configured
// FanOutMode, charging every outcome to the breaker and error accounting.
func (g *Global) fanOut(ctx context.Context, gauge *telemetry.Gauge, children []*child,
	reqFor func(i int) wire.Message,
	onReply func(i int, resp wire.Message)) {
	fanOutCalls(ctx, fanOutOpts{
		mode:    g.cfg.FanOutMode,
		par:     g.cfg.FanOut,
		timeout: g.cfg.CallTimeout,
		gauge:   gauge,
		arena:   &g.arena,
		calls:   &g.cyc.calls,
	}, children, reqFor, func(i int, resp wire.Message, err error) {
		g.accountCall(ctx, children[i], err)
		if err == nil && onReply != nil {
			onReply(i, resp)
		}
	})
}

// fanOutBroadcast dispatches one identical request to every child as a
// marshal-once shared frame, with fanOut's accounting. It takes ownership of
// f (released by the time it returns) and attributes the sends and actual
// encodes to the pipeline stats, whose ratio is the per-cycle marshal
// fan-in.
func (g *Global) fanOutBroadcast(ctx context.Context, gauge *telemetry.Gauge, children []*child,
	f *rpc.SharedFrame, onReply func(i int, resp wire.Message)) {
	fanOutShared(ctx, fanOutOpts{
		mode:    g.cfg.FanOutMode,
		par:     g.cfg.FanOut,
		timeout: g.cfg.CallTimeout,
		gauge:   gauge,
		arena:   &g.arena,
		calls:   &g.cyc.calls,
	}, children, f, nil, func(i int, resp wire.Message, err error) {
		g.accountCall(ctx, children[i], err)
		if err == nil && onReply != nil {
			onReply(i, resp)
		}
	})
	g.pipe.AddSharedSends(uint64(len(children)))
	g.pipe.AddSharedEncodes(f.Encodes())
}

// onPush folds a stage's unsolicited ReportDelta into its dirty-set entry.
// It runs on the connection's read loop, so it stays cheap: one membership
// lookup plus a capacity-reusing cache write, no blocking calls.
func (g *Global) onPush(m wire.Message) {
	rd, ok := m.(*wire.ReportDelta)
	if !ok {
		return
	}
	if c := g.members.get(rd.Report.StageID); c != nil && c.role == wire.RoleStage {
		c.notePush(rd, time.Now())
	}
}

// prepareCycle runs the pre-cycle breaker maintenance: half-open probes for
// quarantined children (readmitting responders), eviction of children whose
// quarantine outlived EvictAfter, and the active/quarantined split the
// cycle's scatter phases work from. The returned slices are the controller's
// cycle scratch, valid until the next prepareCycle.
func (g *Global) prepareCycle(ctx context.Context) (active, quarantined []*child) {
	_, q := g.scratch.split(g.members)
	if len(q) > 0 {
		evictable := sweepProbes(ctx, q, g.breaker, g.cfg.FanOut, g.cfg.CallTimeout, g.faults, g.logf, "controller")
		for _, c := range evictable {
			if g.members.remove(c.info.ID) != nil {
				c.client().Close()
				g.logEvict(c.info.ID)
				g.faults.Evict()
				g.logf("controller: evicted child %d after %v in quarantine", c.info.ID, g.breaker.EvictAfter)
			}
		}
	}
	return g.scratch.split(g.members)
}

// JobStatus is one job's state as of the controller's most recent cycle.
type JobStatus struct {
	// JobID identifies the job.
	JobID uint64
	// Weight is the job's QoS weight.
	Weight float64
	// Stages is the job's stage population seen in the last collect.
	Stages uint32
	// Demand is the job's aggregate demand from the last collect.
	Demand wire.Rates
	// Allocated is the cluster-wide limit the last compute granted.
	Allocated wire.Rates
}

// JobStatuses returns the per-job view of the most recent control cycle,
// sorted by job ID — the operator-facing answer to "who is getting what".
// It is empty before the first cycle completes.
func (g *Global) JobStatuses() []JobStatus {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]JobStatus, len(g.lastJobs))
	copy(out, g.lastJobs)
	return out
}

// recordJobStatuses stores the cycle's per-job view. Inputs arrive in the
// algorithm's input order; allocs is index-aligned.
func (g *Global) recordJobStatuses(inputs []controlalg.JobInput, allocs []controlalg.JobAllocation) {
	statuses := make([]JobStatus, len(inputs))
	for i := range inputs {
		statuses[i] = JobStatus{
			JobID:     inputs[i].JobID,
			Weight:    inputs[i].Weight,
			Stages:    inputs[i].Stages,
			Demand:    inputs[i].Demand,
			Allocated: allocs[i].Limit,
		}
	}
	sort.Slice(statuses, func(a, b int) bool { return statuses[a].JobID < statuses[b].JobID })
	g.mu.Lock()
	g.lastJobs = statuses
	g.mu.Unlock()
}

// Health is the outcome of a heartbeat sweep over a controller's children.
type Health struct {
	// Responsive and Unresponsive count children by heartbeat outcome.
	Responsive, Unresponsive int
	// MinRTT, MeanRTT and MaxRTT summarize responsive children's
	// round-trip times.
	MinRTT, MeanRTT, MaxRTT time.Duration
}

// HealthCheck heartbeats every child concurrently and reports liveness and
// round-trip statistics. It does not evict: operators use it to inspect the
// control plane between cycles without affecting membership.
func (g *Global) HealthCheck(ctx context.Context) Health {
	children := g.members.snapshot()
	return sweepHealth(ctx, children, g.cfg.FanOut, g.cfg.CallTimeout)
}

// sweepHealth heartbeats the given children with bounded parallelism. One
// shared heartbeat body serves the whole sweep: round-trip times come from
// each call's local issue time, not the echoed timestamp, so sharing the
// body does not skew them.
func sweepHealth(ctx context.Context, children []*child, fanOut int, timeout time.Duration) Health {
	if len(children) == 0 {
		return Health{}
	}
	rtts := make([]time.Duration, len(children))
	ok := make([]bool, len(children))
	hb := rpc.NewSharedFrame(&wire.Heartbeat{SentUnixMicros: time.Now().UnixMicro()})
	defer hb.Release()
	rpc.Scatter(ctx, len(children), fanOut, func(i int) {
		cctx, cancel := context.WithTimeout(ctx, timeout)
		defer cancel()
		start := time.Now()
		resp, err := children[i].client().GoShared(cctx, hb).Wait(cctx)
		if err != nil {
			return
		}
		if _, isAck := resp.(*wire.HeartbeatAck); isAck {
			rtts[i] = time.Since(start)
			ok[i] = true
		}
	})
	var h Health
	var sum time.Duration
	for i := range children {
		if !ok[i] {
			h.Unresponsive++
			continue
		}
		h.Responsive++
		sum += rtts[i]
		if h.MinRTT == 0 || rtts[i] < h.MinRTT {
			h.MinRTT = rtts[i]
		}
		if rtts[i] > h.MaxRTT {
			h.MaxRTT = rtts[i]
		}
	}
	if h.Responsive > 0 {
		h.MeanRTT = sum / time.Duration(h.Responsive)
	}
	return h
}

// RunCycle executes one complete control cycle and returns its phase
// breakdown. It is the unit the paper's latency figures measure.
//
// Children behind a tripped circuit breaker are skipped by the collect and
// enforce scatter; the cycle proceeds in degraded mode on their last-known
// reports (up to StaleAfter old) and half-open heartbeat probes readmit
// them once they recover, so a flapping child never stalls the cycle and
// never needs manual re-registration.
func (g *Global) RunCycle(ctx context.Context) (telemetry.Breakdown, error) {
	g.mu.Lock()
	if g.deposed {
		epoch := g.epoch
		g.mu.Unlock()
		return telemetry.Breakdown{}, fmt.Errorf("%w (was leading at epoch %d)", ErrDeposed, epoch)
	}
	if g.cfg.Standby && !g.promoted {
		epoch := g.epoch
		g.mu.Unlock()
		return telemetry.Breakdown{}, fmt.Errorf("%w (passive mirror at epoch %d)", ErrStandby, epoch)
	}
	probeEpoch := g.epoch
	probeCycle := g.cycle + 1
	g.mu.Unlock()
	// Half-open probe RPCs run before the phases; attribute their spans to
	// the cycle they gate. Quarantined children receive no in-phase traffic,
	// so PhaseProbe is the only phase their calls ever carry.
	g.cfg.Tracer.SetContext(probeCycle, probeEpoch, uint8(g.cfg.FanOutMode), trace.PhaseProbe)
	active, quarantined := g.prepareCycle(ctx)
	if len(active)+len(quarantined) == 0 {
		return telemetry.Breakdown{}, ErrNoChildren
	}
	g.mu.Lock()
	g.cycle++
	cycle := g.cycle
	mode := g.mode
	epoch := g.epoch
	g.mu.Unlock()
	if len(quarantined) > 0 {
		g.faults.DegradedCycle()
	}

	start := time.Now()
	allocsBefore := telemetry.AllocsNow()
	// New arena generation: every slab draw below reuses last cycle's
	// capacity, and last cycle's rule table is invalidated.
	g.arena.Begin()
	var b telemetry.Breakdown
	var err error
	if mode == wire.RoleAggregator {
		b, err = g.runHierarchicalCycle(ctx, cycle, epoch, active, quarantined)
	} else if g.incrementalActive() {
		b, err = g.runIncrementalFlatCycle(ctx, cycle, epoch, active, quarantined)
	} else {
		b, err = g.runFlatCycle(ctx, cycle, epoch, active, quarantined)
	}
	g.pipe.RecordCycleAllocs(telemetry.AllocsNow() - allocsBefore)
	g.pipe.RecordArena(arenaSnapshot(g.arena.Stats()))
	if err != nil {
		g.cfg.Tracer.RecordCycle(cycle, epoch, uint8(g.cfg.FanOutMode), start, time.Since(start), true)
		return b, err
	}
	b.Total = time.Since(start)
	g.cfg.Tracer.RecordCycle(cycle, epoch, uint8(g.cfg.FanOutMode), start, b.Total, false)
	g.recorder.Record(b)
	g.mu.Lock()
	if !g.gapStart.IsZero() {
		gap := time.Since(g.gapStart)
		g.gapStart = time.Time{}
		g.mu.Unlock()
		g.faults.RecordControlGap(gap)
	} else {
		g.mu.Unlock()
	}
	return b, nil
}

// appendStaleReports folds the quarantined children's still-in-bound cached
// stage reports into dst, charging the fault telemetry. The rows are copied
// out under each child's lock (appendCachedReports): a quarantined stage
// can still push deltas, and those land in the same in-place-reused cache a
// by-reference read would tear.
func appendStaleReports(dst []wire.StageReport, quarantined []*child, staleAfter time.Duration, faults *telemetry.FaultCounters) []wire.StageReport {
	now := time.Now()
	for _, c := range quarantined {
		var age time.Duration
		var ok bool
		if dst, age, ok = c.appendCachedReports(dst, now, staleAfter); ok {
			faults.UseStaleReport(age)
		} else if age > 0 {
			// A cached report exists but aged out: account the drop so
			// operators can see degraded cycles running partially blind.
			faults.DropStaleReport(age)
		}
	}
	return dst
}

// staleReports gathers the quarantined children's cached collect responses
// that are still within the staleness bound, charging the fault telemetry.
// The messages are returned by reference, which is safe only for caches
// with no concurrent writer (aggregator children, which never push);
// stage-child caches must go through appendStaleReports instead.
func staleReports(quarantined []*child, staleAfter time.Duration, faults *telemetry.FaultCounters) []wire.Message {
	now := time.Now()
	out := make([]wire.Message, 0, len(quarantined))
	for _, c := range quarantined {
		if m, age, ok := c.staleReport(now, staleAfter); ok {
			faults.UseStaleReport(age)
			out = append(out, m)
		} else if age > 0 {
			// A cached report exists but aged out: account the drop so
			// operators can see degraded cycles running partially blind.
			faults.DropStaleReport(age)
		}
	}
	return out
}

// runFlatCycle: collect from every active stage, compute, enforce per
// stage. Quarantined stages contribute their last-known report (degraded
// mode) but receive no traffic.
func (g *Global) runFlatCycle(ctx context.Context, cycle, epoch uint64, children, quarantined []*child) (telemetry.Breakdown, error) {
	var b telemetry.Breakdown
	n := len(children)
	mode8 := uint8(g.cfg.FanOutMode)

	// Phase 1: collect.
	g.cfg.Tracer.SetContext(cycle, epoch, mode8, trace.PhaseCollect)
	collectStart := time.Now()
	// The collect request is identical for every stage, so it is marshaled
	// once into a shared frame; each child call writes a header plus a
	// memcopy. Replies land in index-disjoint slots so blocking mode's
	// concurrent harvest keeps a deterministic report order. The slots alias
	// per-connection reuse caches when reply reuse is on, which is safe
	// exactly until the connection's next CollectReply — next cycle, after
	// compute has consumed them.
	replies := g.cyc.replies.Take(&g.arena, n)
	req := rpc.NewSharedFrame(&wire.Collect{Cycle: cycle, WindowMicros: 1_000_000, Epoch: epoch})
	g.fanOutBroadcast(ctx, &g.pipe.CollectInFlight, children, req,
		func(i int, resp wire.Message) {
			if r, ok := resp.(*wire.CollectReply); ok {
				replies[i] = r
				children[i].noteReport(r, time.Now())
			}
		})
	b.Collect = time.Since(collectStart)
	g.cfg.Tracer.RecordPhase(trace.PhaseCollect, cycle, epoch, mode8, collectStart, b.Collect)
	if ctx.Err() != nil {
		return b, ctx.Err()
	}

	// Phase 2: compute.
	g.cfg.Tracer.SetContext(cycle, epoch, mode8, trace.PhaseCompute)
	computeStart := time.Now()
	var untrack func()
	if g.cfg.CPU != nil {
		untrack = g.cfg.CPU.Track()
	}
	reports := g.cyc.reports.Take(&g.arena, n)[:0]
	for _, r := range replies {
		if r != nil {
			reports = append(reports, r.Reports...)
		}
	}
	reports = appendStaleReports(reports, quarantined, g.breaker.StaleAfter, g.faults)
	rules := g.computeFlatRules(reports, g.cfg.FanOutMode == FanOutPipelined)
	if untrack != nil {
		untrack()
	}
	b.Compute = time.Since(computeStart)
	g.cfg.Tracer.RecordPhase(trace.PhaseCompute, cycle, epoch, mode8, computeStart, b.Compute)

	// Phase 3: enforce, one rule per responsive stage.
	g.cfg.Tracer.SetContext(cycle, epoch, mode8, trace.PhaseEnforce)
	enforceStart := time.Now()
	ruleBuf := g.cyc.ruleBuf.Take(&g.arena, n) // index-disjoint one-rule batches
	enfBuf := g.cyc.enfBuf.Take(&g.arena, n)   // index-disjoint request messages
	g.fanOut(ctx, &g.pipe.EnforceInFlight, children,
		func(i int) wire.Message {
			rule, ok := rules.Lookup(children[i].info.ID)
			if !ok {
				return nil // stage did not report this cycle
			}
			batch := ruleBuf[i : i+1 : i+1]
			batch[0] = rule
			if g.cfg.DeltaEnforcement {
				if batch = children[i].filterChanged(batch); len(batch) == 0 {
					return nil
				}
				g.logRules(cycle, children[i].info.ID, batch)
			} else if g.cfg.Store != nil {
				// Without delta enforcement the full batch is sent every
				// cycle, but only changes are worth a log record: the diff
				// keeps the WAL O(changed rules), and logging before the
				// send keeps the store a superset of what the fleet holds.
				g.logRules(cycle, children[i].info.ID, children[i].filterChanged(batch))
			}
			enfBuf[i] = wire.Enforce{Cycle: cycle, Rules: batch, Epoch: epoch}
			return &enfBuf[i]
		}, nil)
	b.Enforce = time.Since(enforceStart)
	g.cfg.Tracer.RecordPhase(trace.PhaseEnforce, cycle, epoch, mode8, enforceStart, b.Enforce)
	return b, ctx.Err()
}

// incrementalActive reports whether the incremental flat cycle applies:
// configured on, and the fan-out pipelined. FanOutBlocking keeps the
// paper-faithful full cycle — the reproduction presets measure the bounded
// blocking pool, and layering incremental skips on top of it would measure
// neither design.
func (g *Global) incrementalActive() bool {
	return g.cfg.Incremental && g.cfg.FanOutMode == FanOutPipelined
}

// runIncrementalFlatCycle is the event-driven flat cycle. Stages push report
// deltas as their rates move, so the controller already holds a current
// report for every live, quiet child; the collect scatter shrinks to the
// edge cases (never reported, forced after re-registration or readmission,
// cache past the heartbeat floor, v1 codec). When on top of that nothing is
// dirty, membership has not changed, and a full compute+enforce pass already
// ran, the cycle short-circuits entirely: the rules the stages hold are
// still exactly the rules this cycle would compute.
func (g *Global) runIncrementalFlatCycle(ctx context.Context, cycle, epoch uint64, children, quarantined []*child) (telemetry.Breakdown, error) {
	var b telemetry.Breakdown
	n := len(children)
	mode8 := uint8(g.cfg.FanOutMode)
	floor := g.cfg.IncrementalFloor
	if floor <= 0 {
		floor = g.breaker.StaleAfter
	}

	// Phase 1: claim the dirty set, then collect only the edge cases.
	g.cfg.Tracer.SetContext(cycle, epoch, mode8, trace.PhaseCollect)
	collectStart := time.Now()
	dirty := 0
	collectSet := g.scratch.collect[:0]
	for _, c := range children {
		wasDirty, collect := c.incrementalState(collectStart, floor)
		if !collect && c.client().CodecVersion() < wire.CodecV2 {
			// A v1 child cannot push deltas: keep its per-cycle collect.
			collect = true
		}
		if wasDirty {
			dirty++
		}
		if collect {
			collectSet = append(collectSet, c)
		}
	}
	g.scratch.collect = collectSet
	g.pipe.RecordDirty(dirty)
	g.pipe.AddSuppressedCollects(uint64(n - len(collectSet)))

	memberEpoch := g.members.currentEpoch()
	if dirty == 0 && len(collectSet) == 0 && len(quarantined) == 0 &&
		g.incrReady && g.incrMembers == memberEpoch {
		// Quiesced fast path: every cache is fresh and nothing moved since
		// the last computed rules were enforced. Skip all three phases.
		g.pipe.AddSuppressedEnforces(uint64(n))
		b.Collect = time.Since(collectStart)
		g.cfg.Tracer.RecordPhase(trace.PhaseCollect, cycle, epoch, mode8, collectStart, b.Collect)
		return b, ctx.Err()
	}

	if len(collectSet) > 0 {
		req := rpc.NewSharedFrame(&wire.Collect{Cycle: cycle, WindowMicros: 1_000_000, Epoch: epoch})
		g.fanOutBroadcast(ctx, &g.pipe.CollectInFlight, collectSet, req,
			func(i int, resp wire.Message) {
				if r, ok := resp.(*wire.CollectReply); ok {
					collectSet[i].noteReport(r, time.Now())
				}
			})
	}
	b.Collect = time.Since(collectStart)
	g.cfg.Tracer.RecordPhase(trace.PhaseCollect, cycle, epoch, mode8, collectStart, b.Collect)
	if ctx.Err() != nil {
		return b, ctx.Err()
	}

	// Phase 2: compute from the report cache. Pushed deltas, the collects
	// just made, and quarantined children's bounded-stale reports all read
	// back the same way, so the compute half is exactly the full cycle's.
	g.cfg.Tracer.SetContext(cycle, epoch, mode8, trace.PhaseCompute)
	computeStart := time.Now()
	var untrack func()
	if g.cfg.CPU != nil {
		untrack = g.cfg.CPU.Track()
	}
	now := time.Now()
	reports := g.cyc.reports.Take(&g.arena, n)[:0]
	for _, c := range children {
		reports, _, _ = c.appendCachedReports(reports, now, g.breaker.StaleAfter)
	}
	reports = appendStaleReports(reports, quarantined, g.breaker.StaleAfter, g.faults)
	// Incremental mode implies the pipelined fan-out, so the parallel
	// kernel is always eligible here.
	rules := g.computeFlatRules(reports, true)
	if untrack != nil {
		untrack()
	}
	b.Compute = time.Since(computeStart)
	g.cfg.Tracer.RecordPhase(trace.PhaseCompute, cycle, epoch, mode8, computeStart, b.Compute)

	// Phase 3: enforce only the changed rules. Incremental mode implies
	// delta enforcement — recomputing over a mostly-unchanged cache yields
	// mostly-unchanged rules, and re-sending those would undo the savings.
	g.cfg.Tracer.SetContext(cycle, epoch, mode8, trace.PhaseEnforce)
	enforceStart := time.Now()
	ruleBuf := g.cyc.ruleBuf.Take(&g.arena, n)
	enfBuf := g.cyc.enfBuf.Take(&g.arena, n)
	var suppressed uint64 // reqFor runs sequentially in pipelined mode
	g.fanOut(ctx, &g.pipe.EnforceInFlight, children,
		func(i int) wire.Message {
			rule, ok := rules.Lookup(children[i].info.ID)
			if !ok {
				return nil // no report in the cache this cycle
			}
			batch := ruleBuf[i : i+1 : i+1]
			batch[0] = rule
			if batch = children[i].filterChanged(batch); len(batch) == 0 {
				suppressed++
				return nil
			}
			g.logRules(cycle, children[i].info.ID, batch)
			enfBuf[i] = wire.Enforce{Cycle: cycle, Rules: batch, Epoch: epoch}
			return &enfBuf[i]
		}, nil)
	g.pipe.AddSuppressedEnforces(suppressed)
	b.Enforce = time.Since(enforceStart)
	g.cfg.Tracer.RecordPhase(trace.PhaseEnforce, cycle, epoch, mode8, enforceStart, b.Enforce)
	g.incrReady = true
	g.incrMembers = memberEpoch
	return b, ctx.Err()
}

// runHierarchicalCycle: collect pre-aggregated reports from active
// aggregators, compute, push per-stage rule batches back through them.
// Quarantined aggregators contribute their last-known aggregates (degraded
// mode) but receive no traffic.
func (g *Global) runHierarchicalCycle(ctx context.Context, cycle, epoch uint64, children, quarantined []*child) (telemetry.Breakdown, error) {
	var b telemetry.Breakdown
	n := len(children)
	mode8 := uint8(g.cfg.FanOutMode)

	// Phase 1: collect.
	g.cfg.Tracer.SetContext(cycle, epoch, mode8, trace.PhaseCollect)
	collectStart := time.Now()
	replies := g.cyc.aggReplies.Take(&g.arena, n)
	req := rpc.NewSharedFrame(&wire.Collect{Cycle: cycle, WindowMicros: 1_000_000, Epoch: epoch})
	g.fanOutBroadcast(ctx, &g.pipe.CollectInFlight, children, req,
		func(i int, resp wire.Message) {
			switch resp.(type) {
			case *wire.CollectAggReply, *wire.CollectReply:
				replies[i] = resp
				children[i].noteReport(resp, time.Now())
			}
		})
	b.Collect = time.Since(collectStart)
	g.cfg.Tracer.RecordPhase(trace.PhaseCollect, cycle, epoch, mode8, collectStart, b.Collect)
	if ctx.Err() != nil {
		return b, ctx.Err()
	}

	// Phase 2: compute. The global normally sees per-job aggregates
	// (paper §III-B), so allocations are split uniformly across each
	// job's stages; the per-aggregator rule batches cover every stage.
	// Raw per-stage replies (aggregators in ForwardRaw ablation mode) are
	// aggregated here instead, charging this controller's CPU.
	g.cfg.Tracer.SetContext(cycle, epoch, mode8, trace.PhaseCompute)
	computeStart := time.Now()
	var untrack func()
	if g.cfg.CPU != nil {
		untrack = g.cfg.CPU.Track()
	}
	groups := make([][]wire.JobReport, 0, n)
	responded := g.cyc.responded.Take(&g.arena, n)
	for i, r := range replies {
		switch r := r.(type) {
		case *wire.CollectAggReply:
			groups = append(groups, r.Jobs)
			responded[i] = true
		case *wire.CollectReply:
			groups = append(groups, metrics.AggregateByJob(r.Reports))
			responded[i] = true
		}
	}
	for _, m := range staleReports(quarantined, g.breaker.StaleAfter, g.faults) {
		switch r := m.(type) {
		case *wire.CollectAggReply:
			groups = append(groups, r.Jobs)
		case *wire.CollectReply:
			groups = append(groups, metrics.AggregateByJob(r.Reports))
		}
	}
	merged := metrics.MergeJobReports(groups...)
	inputs := g.cyc.inputs.Take(&g.arena, len(merged))
	g.mu.Lock()
	for i, j := range merged {
		inputs[i] = controlalg.JobInput{
			JobID:  j.JobID,
			Weight: g.jobWeights[j.JobID],
			Demand: j.Demand,
			Stages: j.Stages,
		}
	}
	capacity := g.capacity
	g.mu.Unlock()
	allocs := g.cfg.Algorithm.Allocate(inputs, capacity)
	g.recordJobStatuses(inputs, allocs)

	perStage := make(map[uint64]wire.Rates, len(allocs))
	for i, a := range allocs {
		perStage[a.JobID] = controlalg.SplitUniform(a.Limit, int(merged[i].Stages))
	}

	// Build each aggregator's enforcement payload: per-stage rule batches
	// normally, or per-job budgets in delegated mode (§VI), where the
	// aggregators split budgets over stages themselves.
	batches := make([][]wire.Rule, n)
	budgets := make([][]wire.JobBudget, n)
	for i, c := range children {
		if !responded[i] {
			continue // skip unresponsive aggregators this cycle
		}
		stages := c.stageList()
		if g.cfg.Delegated {
			counts := make(map[uint64]int)
			for _, s := range stages {
				counts[s.JobID]++
			}
			budget := make([]wire.JobBudget, 0, len(counts))
			for _, a := range allocs {
				cnt := counts[a.JobID]
				if cnt == 0 {
					continue
				}
				budget = append(budget, wire.JobBudget{
					JobID: a.JobID,
					Limit: perStage[a.JobID].Scale(float64(cnt)),
				})
			}
			budgets[i] = budget
			continue
		}
		batch := g.cyc.ruleBuf.Take(&g.arena, len(stages))[:0]
		for _, s := range stages {
			limit, ok := perStage[s.JobID]
			if !ok {
				continue
			}
			batch = append(batch, wire.Rule{
				StageID: s.ID,
				JobID:   s.JobID,
				Action:  wire.ActionSetLimit,
				Limit:   limit,
			})
		}
		batches[i] = batch
	}
	if untrack != nil {
		untrack()
	}
	b.Compute = time.Since(computeStart)
	g.cfg.Tracer.RecordPhase(trace.PhaseCompute, cycle, epoch, mode8, computeStart, b.Compute)

	// Phase 3: enforce via aggregators.
	g.cfg.Tracer.SetContext(cycle, epoch, mode8, trace.PhaseEnforce)
	enforceStart := time.Now()
	g.fanOut(ctx, &g.pipe.EnforceInFlight, children,
		func(i int) wire.Message {
			if g.cfg.Delegated {
				if len(budgets[i]) == 0 {
					return nil
				}
				return &wire.Delegate{Cycle: cycle, Budgets: budgets[i]}
			}
			batch := batches[i]
			if g.cfg.DeltaEnforcement {
				batch = children[i].filterChanged(batch)
				if len(batch) == 0 {
					return nil
				}
				g.logRules(cycle, children[i].info.ID, batch)
			} else {
				if len(batch) == 0 {
					return nil
				}
				if g.cfg.Store != nil {
					g.logRules(cycle, children[i].info.ID, children[i].filterChanged(batch))
				}
			}
			return &wire.Enforce{Cycle: cycle, Rules: batch, Epoch: epoch}
		}, nil)
	b.Enforce = time.Since(enforceStart)
	g.cfg.Tracer.RecordPhase(trace.PhaseEnforce, cycle, epoch, mode8, enforceStart, b.Enforce)
	return b, ctx.Err()
}

// Run executes control cycles until ctx ends. A zero interval runs the
// paper's stress workload (back-to-back cycles); otherwise each cycle
// starts interval after the previous one started. A standby first waits
// passively for its leadership lease to expire, then promotes itself and
// runs cycles as the new primary; a deposed primary returns ErrDeposed.
func (g *Global) Run(ctx context.Context, interval time.Duration) error {
	if g.cfg.Standby {
		if err := g.runStandby(ctx); err != nil {
			return err
		}
	}
	for {
		cycleStart := time.Now()
		if _, err := g.RunCycle(ctx); err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if errors.Is(err, ErrNoChildren) {
				// An empty control plane idles rather than spinning.
				select {
				case <-time.After(10 * time.Millisecond):
					continue
				case <-ctx.Done():
					return ctx.Err()
				}
			}
			return err
		}
		if interval > 0 {
			sleep := interval - time.Since(cycleStart)
			if sleep > 0 {
				select {
				case <-time.After(sleep):
				case <-ctx.Done():
					return ctx.Err()
				}
			}
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
	}
}

// MemoryFootprint estimates the controller's state size in bytes: the
// membership table, per-child connection buffers, job table, and rule
// scratch space. It implements monitor.MemoryReporter for per-role memory
// attribution in single-process simulations.
func (g *Global) MemoryFootprint() uint64 {
	// perChild reflects the measured in-process heap cost of one managed
	// connection (RPC client, pending map, frame buffers, simulated-conn
	// queues): ~24 KiB of the ~39 KiB a stage+connection pair costs.
	const (
		perChild = 24 << 10
		perStage = 160 // stage.Info + rule scratch
		perJob   = 96  // weights and aggregation entries
	)
	var total uint64
	for _, c := range g.members.snapshot() {
		total += perChild + uint64(len(c.info.Addr))
		total += uint64(c.numStages()+1) * perStage
	}
	g.mu.Lock()
	total += uint64(len(g.jobWeights)) * perJob
	g.mu.Unlock()
	return total
}

// Close stops the state-sync loop, severs all child connections, stops the
// registration endpoint, and flushes and closes the store (if any).
func (g *Global) Close() error {
	g.mu.Lock()
	syncCancel, syncDone := g.syncCancel, g.syncDone
	g.mu.Unlock()
	if syncCancel != nil {
		syncCancel()
		<-syncDone
	}
	g.members.closeAll()
	var err error
	if g.regSrv != nil {
		err = g.regSrv.Close()
	}
	if g.cfg.Store != nil {
		if serr := g.cfg.Store.Close(); err == nil {
			err = serr
		}
	}
	return err
}
