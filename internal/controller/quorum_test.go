package controller

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/dsrhaslab/sdscale/internal/store"
	"github.com/dsrhaslab/sdscale/internal/wire"
)

// TestQuorumFailover kills the primary of a three-controller quorum and
// checks that exactly one standby wins the election, promotes with a bumped
// epoch, adopts the stage fleet, and renews the loser's lease (ending its
// candidacy) — the quorum survives any single node failure with epoch
// monotonicity.
func TestQuorumFailover(t *testing.T) {
	n := fastNet()
	stages := startStages(t, n, 4, 2, wire.Rates{1000, 100})

	// Fixed ports let every controller know its peers' addresses up front.
	const port = ":41000"
	a1, a2, a3 := "ctrl-1"+port, "ctrl-2"+port, "ctrl-3"+port

	base := GlobalConfig{
		ListenAddr:   port,
		Capacity:     wire.Rates{4000, 400},
		LeaseTimeout: 150 * time.Millisecond,
		SyncInterval: 25 * time.Millisecond,
		CallTimeout:  time.Second,
	}

	scfg2 := base
	scfg2.Network = n.Host("ctrl-2")
	scfg2.ID = 2
	scfg2.Standby = true
	scfg2.StandbyAddrs = []string{a1, a3}
	sb2, err := NewGlobal(scfg2)
	if err != nil {
		t.Fatalf("standby 2: %v", err)
	}
	t.Cleanup(func() { sb2.Close() })

	scfg3 := base
	scfg3.Network = n.Host("ctrl-3")
	scfg3.ID = 3
	scfg3.Standby = true
	scfg3.StandbyAddrs = []string{a1, a2}
	sb3, err := NewGlobal(scfg3)
	if err != nil {
		t.Fatalf("standby 3: %v", err)
	}
	t.Cleanup(func() { sb3.Close() })

	gcfg := base
	gcfg.Network = n.Host("ctrl-1")
	gcfg.ID = 1
	gcfg.Epoch = 1
	gcfg.StandbyAddrs = []string{a2, a3}
	g, err := NewGlobal(gcfg)
	if err != nil {
		t.Fatalf("primary: %v", err)
	}
	closed := false
	t.Cleanup(func() {
		if !closed {
			g.Close()
		}
	})

	ctx := context.Background()
	for _, v := range stages {
		if err := g.AddStage(ctx, v.Info()); err != nil {
			t.Fatalf("AddStage: %v", err)
		}
	}
	if _, err := g.RunCycle(ctx); err != nil {
		t.Fatalf("RunCycle: %v", err)
	}

	runCtx, stopRun := context.WithCancel(context.Background())
	defer stopRun()
	done2 := make(chan error, 1)
	done3 := make(chan error, 1)
	go func() { done2 <- sb2.Run(runCtx, 25*time.Millisecond) }()
	go func() { done3 <- sb3.Run(runCtx, 25*time.Millisecond) }()

	// Wait for replication to reach both standbys.
	deadline := time.Now().Add(5 * time.Second)
	for sb2.Epoch() < 1 || sb3.Epoch() < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("standbys never mirrored the primary: epochs %d, %d", sb2.Epoch(), sb3.Epoch())
		}
		time.Sleep(5 * time.Millisecond)
	}

	closed = true
	g.Close() // primary dies

	// Exactly one standby must win the election.
	var winner, loser *Global
	deadline = time.Now().Add(5 * time.Second)
	for winner == nil {
		if time.Now().After(deadline) {
			t.Fatal("no standby promoted after primary death")
		}
		switch {
		case sb2.Promoted():
			winner, loser = sb2, sb3
		case sb3.Promoted():
			winner, loser = sb3, sb2
		default:
			time.Sleep(5 * time.Millisecond)
		}
	}
	if winner.Epoch() <= 1 {
		t.Fatalf("winner promoted without bumping the epoch: %d", winner.Epoch())
	}

	// The winner adopts the fleet and resumes cycles.
	deadline = time.Now().Add(5 * time.Second)
	for winner.NumChildren() < len(stages) {
		if time.Now().After(deadline) {
			t.Fatalf("winner adopted %d/%d stages", winner.NumChildren(), len(stages))
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The loser must settle as the winner's mirror: lease renewed by the new
	// primary's StateSyncs, epoch adopted, never promoted.
	deadline = time.Now().Add(5 * time.Second)
	for loser.Epoch() != winner.Epoch() {
		if time.Now().After(deadline) {
			t.Fatalf("loser never adopted the winner's epoch: %d vs %d", loser.Epoch(), winner.Epoch())
		}
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(200 * time.Millisecond) // > LeaseTimeout: a renewed lease keeps it passive
	if loser.Promoted() {
		t.Fatal("both standbys promoted: split brain")
	}
	if got := winner.Stats().Faults.Elections; got < 1 {
		t.Fatalf("winner ran %d elections, want >= 1", got)
	}
	if got := loser.Stats().Faults.VotesGranted; got < 1 {
		t.Fatalf("loser granted %d votes, want >= 1", got)
	}

	stopRun()
	<-done2
	<-done3
}

// TestVoteGrantRules drives handleVoteRequest directly through every denial
// rule: non-monotonic epochs, a current lease, and a candidate whose mirror
// lags the voter's.
func TestVoteGrantRules(t *testing.T) {
	n := fastNet()
	cfg := GlobalConfig{
		Network:      n.Host("voter"),
		ListenAddr:   ":0",
		ID:           7,
		Standby:      true,
		StandbyAddrs: []string{"peer-a:1", "peer-b:1"},
		LeaseTimeout: 30 * time.Millisecond,
	}
	sb, err := NewGlobal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sb.Close() })
	time.Sleep(40 * time.Millisecond) // let the initial lease lapse

	grant := func(req *wire.VoteRequest) *wire.LeaseGrant {
		t.Helper()
		resp, err := sb.handleVoteRequest(req)
		if err != nil {
			t.Fatalf("handleVoteRequest: %v", err)
		}
		lg, ok := resp.(*wire.LeaseGrant)
		if !ok {
			t.Fatalf("got %T, want *wire.LeaseGrant", resp)
		}
		if lg.VoterID != 7 {
			t.Fatalf("grant names voter %d, want 7", lg.VoterID)
		}
		return lg
	}

	if lg := grant(&wire.VoteRequest{CandidateID: 9, Epoch: 3}); !lg.Granted {
		t.Fatalf("first vote at epoch 3 denied: %+v", lg)
	}
	// The same epoch can never be granted twice, and lower ones never at all.
	if lg := grant(&wire.VoteRequest{CandidateID: 8, Epoch: 3}); lg.Granted || lg.Epoch != 3 {
		t.Fatalf("epoch 3 re-granted or wrong floor echoed: %+v", lg)
	}
	if lg := grant(&wire.VoteRequest{CandidateID: 8, Epoch: 2}); lg.Granted {
		t.Fatalf("stale epoch 2 granted: %+v", lg)
	}

	// A granted vote restarts the voter's lease, so an immediate second
	// election — even at a fresh epoch — is denied.
	if lg := grant(&wire.VoteRequest{CandidateID: 8, Epoch: 4}); lg.Granted {
		t.Fatalf("vote granted while the previous winner's lease is current: %+v", lg)
	}
	time.Sleep(40 * time.Millisecond)

	// Mirror freshness: the voter has seen cycle 10, so a candidate whose
	// mirror stopped at cycle 5 would roll the fleet back.
	if _, err := sb.handleStateSync(&wire.StateSync{PrimaryID: 1, Epoch: 4, Cycle: 10}); err != nil {
		t.Fatalf("handleStateSync: %v", err)
	}
	time.Sleep(40 * time.Millisecond) // past the defaulted lease
	if lg := grant(&wire.VoteRequest{CandidateID: 8, Epoch: 5, Cycle: 5}); lg.Granted {
		t.Fatalf("vote granted to a candidate with a stale mirror: %+v", lg)
	}
	if lg := grant(&wire.VoteRequest{CandidateID: 8, Epoch: 5, Cycle: 10}); !lg.Granted {
		t.Fatalf("vote denied to an up-to-date candidate: %+v", lg)
	}

	st := sb.Stats().Faults
	if st.VotesGranted != 2 || st.VotesDenied != 4 {
		t.Fatalf("votes granted/denied = %d/%d, want 2/4", st.VotesGranted, st.VotesDenied)
	}
}

// TestActiveLeaderDeniesVotes checks the liveness rule: a controller that is
// actually leading refutes every candidacy, whatever the proposed epoch.
func TestActiveLeaderDeniesVotes(t *testing.T) {
	n := fastNet()
	g, err := NewGlobal(GlobalConfig{Network: n.Host("leader"), ID: 1, Epoch: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { g.Close() })
	resp, err := g.handleVoteRequest(&wire.VoteRequest{CandidateID: 2, Epoch: 100})
	if err != nil {
		t.Fatal(err)
	}
	if lg := resp.(*wire.LeaseGrant); lg.Granted {
		t.Fatalf("active leader granted a vote: %+v", lg)
	}
}

// TestVotePersistedDurably checks that a granted vote survives the voter's
// restart: the promise is in the store before the grant leaves the process,
// so the epoch can never be double-granted across a crash.
func TestVotePersistedDurably(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(store.Options{Dir: dir, NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	n := fastNet()
	sb, err := NewGlobal(GlobalConfig{
		Network:      n.Host("voter"),
		ListenAddr:   ":0",
		ID:           7,
		Standby:      true,
		StandbyAddrs: []string{"peer-a:1"},
		LeaseTimeout: 10 * time.Millisecond,
		Store:        st,
	})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	resp, err := sb.handleVoteRequest(&wire.VoteRequest{CandidateID: 9, Epoch: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.(*wire.LeaseGrant).Granted {
		t.Fatalf("vote denied: %+v", resp)
	}
	if err := sb.Close(); err != nil { // closes the store too
		t.Fatal(err)
	}

	st2, err := store.Open(store.Options{Dir: dir, NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := st2.Recovered().VotedEpoch; got != 5 {
		t.Fatalf("recovered voted epoch = %d, want 5", got)
	}
}

// TestRecoverFromStore cold-starts a controller from another's store: full
// membership and weights come back from disk, the epoch lands strictly above
// everything persisted, and the fleet accepts the recovered controller's
// first cycle.
func TestRecoverFromStore(t *testing.T) {
	dir := t.TempDir()
	n := fastNet()
	stages := startStages(t, n, 4, 2, wire.Rates{1000, 100})

	st, err := store.Open(store.Options{Dir: dir, NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGlobal(GlobalConfig{
		Network:  n.Host("global"),
		ID:       1,
		Epoch:    1,
		Capacity: wire.Rates{4000, 400},
		Store:    st,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, v := range stages {
		if err := g.AddStage(ctx, v.Info()); err != nil {
			t.Fatalf("AddStage: %v", err)
		}
	}
	for i := 0; i < 3; i++ {
		if _, err := g.RunCycle(ctx); err != nil {
			t.Fatalf("RunCycle %d: %v", i, err)
		}
	}
	oldEpoch := g.Epoch()
	if err := g.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	st2, err := store.Open(store.Options{Dir: dir, NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	g2, err := NewGlobal(GlobalConfig{
		Network:  n.Host("global-restart"),
		ID:       1,
		Capacity: wire.Rates{4000, 400},
		Store:    st2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { g2.Close() })
	if err := g2.Recover(ctx); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if g2.NumChildren() != len(stages) {
		t.Fatalf("recovered %d/%d children", g2.NumChildren(), len(stages))
	}
	if g2.Epoch() <= oldEpoch {
		t.Fatalf("recovered epoch %d does not exceed the crashed primary's %d", g2.Epoch(), oldEpoch)
	}
	cs := g2.Stats()
	if cs.Store == nil || cs.Store.Replay.Records == 0 {
		t.Fatalf("recovery stats missing replay evidence: %+v", cs.Store)
	}
	// The first cycle is a natural full pass that pushes the bumped epoch.
	if _, err := g2.RunCycle(ctx); err != nil {
		t.Fatalf("post-recovery RunCycle: %v", err)
	}
}

// TestDefaultedLeaseCounted checks the lease-fallback telemetry: a StateSync
// without a lease duration still renews using the local timeout, but the
// misconfiguration is counted.
func TestDefaultedLeaseCounted(t *testing.T) {
	n := fastNet()
	sb, err := NewGlobal(GlobalConfig{
		Network:      n.Host("standby"),
		ListenAddr:   ":0",
		Standby:      true,
		LeaseTimeout: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sb.Close() })
	for i := 0; i < 2; i++ {
		if _, err := sb.handleStateSync(&wire.StateSync{PrimaryID: 1, Epoch: uint64(i + 1)}); err != nil {
			t.Fatalf("handleStateSync %d: %v", i, err)
		}
	}
	if got := sb.Stats().Faults.DefaultedLeases; got != 2 {
		t.Fatalf("DefaultedLeases = %d, want 2", got)
	}
}

// TestRoleErrorsCarryContext checks that ErrStandby and ErrDeposed reach
// callers wrapped with the role and epoch that produced them, while staying
// matchable with errors.Is.
func TestRoleErrorsCarryContext(t *testing.T) {
	n := fastNet()
	sb, err := NewGlobal(GlobalConfig{
		Network:    n.Host("standby"),
		ListenAddr: ":0",
		Standby:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sb.Close() })
	_, err = sb.RunCycle(context.Background())
	if !errors.Is(err, ErrStandby) {
		t.Fatalf("standby RunCycle: %v, want ErrStandby", err)
	}
	if !strings.Contains(err.Error(), "epoch") {
		t.Fatalf("ErrStandby lost its context: %q", err)
	}

	g, err := NewGlobal(GlobalConfig{Network: n.Host("primary"), Epoch: 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { g.Close() })
	g.stepDown("test")
	_, err = g.RunCycle(context.Background())
	if !errors.Is(err, ErrDeposed) {
		t.Fatalf("deposed RunCycle: %v, want ErrDeposed", err)
	}
	if !strings.Contains(err.Error(), "epoch 3") {
		t.Fatalf("ErrDeposed lost its context: %q", err)
	}
}
