package trace

import (
	"fmt"
	"io"
	"sort"

	"github.com/dsrhaslab/sdscale/internal/telemetry"
)

// WritePrometheus renders the tracer's cumulative totals and span-derived
// histograms (per-phase latency quantiles, call/server breakdowns, slowest
// children) in Prometheus text format. The histograms are computed from the
// ring snapshot at scrape time — the hot path pays nothing for them.
func (t *Tracer) WritePrometheus(w io.Writer, name string) error {
	if t == nil {
		return nil
	}
	labels := []string{"tracer", name}
	tot := t.Totals()
	counters := []struct {
		metric string
		value  uint64
	}{
		{"sdscale_trace_cycles_total", tot.Cycles},
		{"sdscale_trace_client_calls_total", tot.ClientCalls},
		{"sdscale_trace_client_sampled_total", tot.ClientSampled},
		{"sdscale_trace_client_errors_total", tot.ClientErrors},
		{"sdscale_trace_abandoned_calls_total", tot.Abandoned},
		{"sdscale_trace_server_calls_total", tot.ServerCalls},
		{"sdscale_trace_server_sampled_total", tot.ServerSampled},
	}
	for _, c := range counters {
		if err := telemetry.PromCounter(w, c.metric, c.value, labels...); err != nil {
			return err
		}
	}
	gauges := []struct {
		metric string
		value  float64
	}{
		{"sdscale_trace_client_busy_seconds_total", tot.ClientDur.Seconds()},
		{"sdscale_trace_client_marshal_seconds_total", tot.ClientMarshal.Seconds()},
		{"sdscale_trace_client_write_seconds_total", tot.ClientWrite.Seconds()},
		{"sdscale_trace_server_busy_seconds_total", tot.ServerDur.Seconds()},
		{"sdscale_trace_server_queue_seconds_total", tot.ServerQueue.Seconds()},
		{"sdscale_trace_server_handler_seconds_total", tot.ServerHandler.Seconds()},
		{"sdscale_trace_server_write_seconds_total", tot.ServerWrite.Seconds()},
	}
	for _, g := range gauges {
		if err := telemetry.PromGauge(w, g.metric, g.value, labels...); err != nil {
			return err
		}
	}
	hists := t.Histograms()
	names := make([]string, 0, len(hists))
	for metric := range hists {
		names = append(names, metric)
	}
	sort.Strings(names)
	for _, metric := range names {
		if err := telemetry.PromHistogram(w, "sdscale_trace_span", hists[metric],
			"tracer", name, "span", metric); err != nil {
			return err
		}
	}
	for i, c := range t.SlowestChildren(10) {
		if err := telemetry.PromGauge(w, "sdscale_trace_slowest_child_seconds", c.Dur.Seconds(),
			"tracer", name, "rank", fmt.Sprintf("%d", i+1),
			"child", fmt.Sprintf("%d", c.Tag), "phase", c.Phase.String()); err != nil {
			return err
		}
	}
	return nil
}
