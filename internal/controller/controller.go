// Package controller implements the sdscale control plane: the global
// controller that runs the control cycle (collect → compute → enforce,
// paper §II-B) and the aggregator controllers that form the extra level of
// the hierarchical design (paper Fig. 3).
//
// Topologies:
//
//   - Flat (paper Fig. 2): one Global whose children are data-plane stages.
//     It collects every stage's report, runs the control algorithm, and
//     enforces one rule per stage. The controller holds one long-lived
//     connection per stage, which is exactly why the design hits the
//     per-node connection limit (§IV-A).
//   - Hierarchical (paper Fig. 3): one Global whose children are
//     Aggregators, each owning a disjoint set of stages. Aggregators fan
//     collections out, pre-aggregate per-job metrics (shrinking the
//     global's inbound traffic), and fan enforcement rules back down. The
//     global still computes rules for every stage (§IV-B, Table III).
//
// Resource accounting: each controller role owns a transport.Meter (bytes)
// and a monitor.CPUMeter (busy time on compute sections and send-path
// marshaling), which the experiment harness turns into the rows of the
// paper's Tables II–IV.
package controller

import (
	"sync"

	"github.com/dsrhaslab/sdscale/internal/rpc"
	"github.com/dsrhaslab/sdscale/internal/stage"
	"github.com/dsrhaslab/sdscale/internal/wire"
)

// DefaultFanOut is the bounded parallelism controllers use when fanning
// requests out to children. It models the fixed handler pool of the
// paper's gRPC-based prototype: per-child work beyond the pool width
// accumulates, which is what makes control-cycle latency grow with the
// number of children (Fig. 4).
const DefaultFanOut = 8

// DefaultMaxFailures is how many consecutive call failures a controller
// tolerates before evicting a child from the control plane.
const DefaultMaxFailures = 3

// child is a controller's handle to one downstream component (a stage or an
// aggregator), with its long-lived RPC connection.
type child struct {
	info stage.Info
	role wire.Role
	cli  *rpc.Client
	// stages lists the stages behind an aggregator child; nil for stages.
	stages []stage.Info

	mu    sync.Mutex
	fails int
	// lastRules caches the most recently enforced rule per stage for
	// delta enforcement (skip sends when nothing changed).
	lastRules map[uint64]wire.Rule
}

// filterChanged returns only the rules that differ from what was last sent
// to this child, updating the cache. With deterministic demand (the stress
// workload) allocations repeat bit-for-bit, so exact comparison suffices.
func (c *child) filterChanged(rules []wire.Rule) []wire.Rule {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.lastRules == nil {
		c.lastRules = make(map[uint64]wire.Rule, len(rules))
	}
	changed := rules[:0:0]
	for _, r := range rules {
		if prev, ok := c.lastRules[r.StageID]; !ok || prev != r {
			changed = append(changed, r)
			c.lastRules[r.StageID] = r
		}
	}
	return changed
}

// recordResult updates the child's consecutive-failure count and reports
// whether the child should be evicted.
func (c *child) recordResult(err error, maxFailures int) (evict bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err == nil {
		c.fails = 0
		return false
	}
	c.fails++
	return c.fails >= maxFailures
}

// memberSet tracks a controller's children with cheap snapshotting: the
// control cycle iterates a point-in-time slice while registrations proceed
// concurrently.
type memberSet struct {
	mu    sync.Mutex
	byID  map[uint64]*child
	order []*child
	epoch uint64
}

func newMemberSet() *memberSet {
	return &memberSet{byID: make(map[uint64]*child)}
}

// add inserts c; it reports false if the ID is already present.
func (m *memberSet) add(c *child) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.byID[c.info.ID]; dup {
		return false
	}
	m.byID[c.info.ID] = c
	m.order = append(m.order, c)
	m.epoch++
	return true
}

// remove deletes the child by ID and returns it (nil if absent).
func (m *memberSet) remove(id uint64) *child {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.byID[id]
	if !ok {
		return nil
	}
	delete(m.byID, id)
	for i, o := range m.order {
		if o == c {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	m.epoch++
	return c
}

// snapshot returns the current children. The slice is fresh; the children
// are shared.
func (m *memberSet) snapshot() []*child {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*child, len(m.order))
	copy(out, m.order)
	return out
}

// size returns the current child count.
func (m *memberSet) size() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.order)
}

// currentEpoch returns the membership epoch (bumped on every change).
func (m *memberSet) currentEpoch() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.epoch
}

// closeAll severs every child connection and empties the set.
func (m *memberSet) closeAll() {
	m.mu.Lock()
	children := m.order
	m.order = nil
	m.byID = make(map[uint64]*child)
	m.mu.Unlock()
	for _, c := range children {
		c.cli.Close()
	}
}
