package sdscale_test

import (
	"context"
	"strings"
	"testing"

	"github.com/dsrhaslab/sdscale"
)

// TestTopologySingleShardEquivalence pins the compatibility contract: a
// one-shard Topology is behaviorally identical to the classic single-Global
// deployment — same membership, same cycle, same per-stage rules.
func TestTopologySingleShardEquivalence(t *testing.T) {
	ctx := context.Background()

	d, err := sdscale.StartTopology(sdscale.Topology{Stages: 40, Jobs: 4, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	c, err := sdscale.BuildCluster(sdscale.ClusterConfig{Topology: sdscale.Flat, Stages: 40, Jobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if d.NumShards() != 1 {
		t.Fatalf("NumShards = %d, want 1", d.NumShards())
	}
	if _, err := d.RunCycle(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunControlCycle(ctx); err != nil {
		t.Fatal(err)
	}

	ds, cs := d.Stats(), c.Global.Stats()
	if ds.Children != cs.Children || ds.Stages != cs.Stages || ds.MaxEpoch != cs.Epoch {
		t.Errorf("stats diverge: topology %+v vs global %+v", ds, cs)
	}
	for i := range d.Cluster().Stages {
		dr, dok := d.Cluster().Stages[i].LastRule()
		cr, cok := c.Stages[i].LastRule()
		if !dok || !cok {
			t.Fatalf("stage %d: missing rule (topology %v, cluster %v)", i, dok, cok)
		}
		if dr.Limit != cr.Limit || dr.Action != cr.Action {
			t.Errorf("stage %d rule diverges: %+v vs %+v", i, dr, cr)
		}
	}

	// Routing degenerates to shard 0 / the single controller.
	if s, g := d.Route(1); s != 0 || g != d.Shard(0) {
		t.Errorf("Route(1) = (%d, %p), want shard 0", s, g)
	}
	if moved, err := d.Rebalance(ctx); err != nil || moved != 0 {
		t.Errorf("Rebalance = (%d, %v), want no-op", moved, err)
	}
}

func TestTopologySharded(t *testing.T) {
	d, err := sdscale.StartTopology(sdscale.Topology{Stages: 120, Jobs: 4, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	ctx := context.Background()

	if d.NumShards() != 4 {
		t.Fatalf("NumShards = %d", d.NumShards())
	}
	if _, err := d.RunCycle(ctx); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.Shards != 4 || st.Children != 120 || len(st.PerShard) != 4 {
		t.Fatalf("stats = %+v", st)
	}

	// Route agrees with the owning leader's membership.
	s, g := d.Route(7)
	if g != d.Shard(s) {
		t.Errorf("Route(7) leader is not Shard(%d)", s)
	}

	if applied, err := d.EnforceUniform(ctx, 1, sdscale.ActionPause, sdscale.Rates{}); err != nil || applied != 30 {
		t.Errorf("EnforceUniform = (%d, %v), want 30 stages paused", applied, err)
	}
	if d.Summary().Cycles != 1 {
		t.Errorf("summary cycles = %d, want 1", d.Summary().Cycles)
	}
}

func TestTopologyHierarchical(t *testing.T) {
	d, err := sdscale.StartTopology(sdscale.Topology{Stages: 24, Jobs: 4, AggregatorFanIn: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	if n := len(d.Cluster().Aggregators); n != 3 {
		t.Fatalf("aggregators = %d, want 3", n)
	}
	if _, err := d.RunCycle(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestTopologyValidate(t *testing.T) {
	cases := []struct {
		name string
		top  sdscale.Topology
		want string
	}{
		{"no stages", sdscale.Topology{Shards: 1}, "at least one stage"},
		{"no shards", sdscale.Topology{Stages: 4}, "at least one shard"},
		{"negative standbys", sdscale.Topology{Stages: 4, Shards: 1, Standbys: -1}, "negative standby"},
		{"standby quorum", sdscale.Topology{Stages: 4, Shards: 1, Standbys: 3}, "quorum"},
		{"fan-in with shards", sdscale.Topology{Stages: 4, Shards: 2, AggregatorFanIn: 2}, "exclusive"},
		{"placement unsharded", sdscale.Topology{Stages: 4, Shards: 1, Placement: func(uint64) int { return 0 }}, "requires Shards > 1"},
		{"placement with standbys", sdscale.Topology{Stages: 4, Shards: 2, Standbys: 1, Placement: func(uint64) int { return 0 }}, "incompatible with Standbys"},
		{"placement out of range", sdscale.Topology{Stages: 4, Shards: 2, Placement: func(uint64) int { return 2 }}, "have 2 shards"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.top.Validate()
			if err == nil {
				t.Fatal("Validate passed, want error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}

	good := sdscale.Topology{Stages: 100, Shards: 4, Standbys: 2}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}
