package wire

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// roundTrip encodes m, decodes it, and returns the decoded message.
func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	buf := Encode(nil, m)
	got, err := Decode(buf)
	if err != nil {
		t.Fatalf("Decode(%s): %v", m.Type(), err)
	}
	return got
}

func TestMessageRoundTrips(t *testing.T) {
	msgs := []Message{
		&Register{Role: RoleStage, ID: 42, JobID: 7, Weight: 2.5, Addr: "stage-42:0"},
		&Register{Role: RoleAggregator, ID: 9},
		&RegisterAck{ID: 42, Epoch: 3},
		&Collect{Cycle: 1001, WindowMicros: 1_000_000},
		&Collect{Cycle: 1002, WindowMicros: 1_000_000, Epoch: 4},
		&CollectReply{Cycle: 1001, Reports: []StageReport{
			{StageID: 1, JobID: 7, Demand: Rates{1000, 50}, Usage: Rates{800, 40}},
			{StageID: 2, JobID: 8, Demand: Rates{0, 0}, Usage: Rates{0, 0}},
		}},
		&CollectReply{Cycle: 5}, // empty reports
		&CollectAggReply{Cycle: 1001, AggregatorID: 3, Jobs: []JobReport{
			{JobID: 7, Stages: 2500, Demand: Rates{2.5e6, 1e5}, Usage: Rates{2e6, 9e4}},
		}},
		&Enforce{Cycle: 1001, Rules: []Rule{
			{StageID: 1, JobID: 7, Action: ActionSetLimit, Limit: Rates{500, 25}},
			{StageID: 2, JobID: 8, Action: ActionNoLimit},
			{StageID: 3, JobID: 9, Action: ActionPause},
		}},
		&Enforce{Cycle: 1002, Epoch: 5, Rules: []Rule{
			{StageID: 4, JobID: 7, Action: ActionSetLimit, Limit: Rates{250, 12}},
		}},
		&Enforce{Cycle: 1003, Epoch: 6}, // empty rules, epoch only
		&EnforceAck{Cycle: 1001, Applied: 2500},
		&Heartbeat{SentUnixMicros: 1234567890},
		&HeartbeatAck{EchoUnixMicros: 1234567890},
		&ErrorReply{Code: CodeOverload, Text: "controller shedding load"},
		&ErrorReply{Code: CodeStaleEpoch, Text: "deposed", Epoch: 7},
		&StageList{},
		&StageListReply{Stages: []StageEntry{
			{ID: 1, JobID: 2, Weight: 1.5, Addr: "stage-1:40000"},
			{ID: 2, JobID: 3, Weight: 1, Addr: "stage-2:40000"},
		}},
		&StageListReply{}, // empty
		&PeerExchange{Cycle: 7, PeerID: 2, Jobs: []JobReport{
			{JobID: 1, Stages: 100, Demand: Rates{1e5, 1e4}, Usage: Rates{9e4, 9e3}},
		}},
		&PeerExchangeAck{Cycle: 7, PeerID: 3},
		&Delegate{Cycle: 9, Budgets: []JobBudget{
			{JobID: 1, Limit: Rates{5000, 500}},
			{JobID: 2, Limit: Rates{100, 10}},
		}},
		&Delegate{Cycle: 10}, // empty budgets
		&StateSync{
			PrimaryID: 1, Epoch: 3, Cycle: 88, LeaseMicros: 250_000,
			Members: []MemberState{
				{Role: RoleStage, ID: 1, JobID: 7, Weight: 1.5, Addr: "stage-1:0",
					Rules: []Rule{{StageID: 1, JobID: 7, Action: ActionSetLimit, Limit: Rates{500, 25}}}},
				{Role: RoleAggregator, ID: 30, Addr: "agg-30:0",
					Stages: []StageEntry{{ID: 2, JobID: 8, Weight: 1, Addr: "stage-2:0"}}},
			},
			Weights: []JobWeight{{JobID: 7, Weight: 1.5}, {JobID: 8, Weight: 1}},
		},
		&StateSync{PrimaryID: 1, Epoch: 3, Cycle: 0, LeaseMicros: 250_000}, // empty mirror
		&StateSyncAck{ID: 2, Epoch: 3},
		&VoteRequest{CandidateID: 2, Epoch: 4, Cycle: 88},
		&LeaseGrant{VoterID: 3, Granted: true, Epoch: 4},
		&LeaseGrant{VoterID: 1, Granted: false, Epoch: 9}, // denial with higher epoch
		&ShardQuery{ChildID: 7},
		&ShardQuery{}, // whole-table query
		&ShardMap{Epoch: 3, Owner: 1, OwnerValid: true, Entries: []ShardEntry{
			{Index: 0, Epoch: 2, Children: 4, Addr: "shard-0:1", Standbys: []string{"shard-0-standby-0:2", "shard-0-standby-1:2"}},
			{Index: 1, Epoch: 3, Children: 5, Addr: "shard-1:1"},
		}},
		&ShardMap{Epoch: 1}, // empty table
	}
	for _, m := range msgs {
		got := roundTrip(t, m)
		if !reflect.DeepEqual(got, m) {
			t.Errorf("%s round trip:\n got %+v\nwant %+v", m.Type(), got, m)
		}
	}
}

func TestDecodeUnknownType(t *testing.T) {
	if _, err := Decode([]byte{0xEE}); err == nil {
		t.Error("Decode accepted unknown message type")
	}
}

func TestDecodeEmpty(t *testing.T) {
	if _, err := Decode(nil); !errors.Is(err, ErrShortBuffer) {
		t.Errorf("Decode(nil) = %v, want ErrShortBuffer", err)
	}
}

func TestDecodeTruncated(t *testing.T) {
	full := Encode(nil, &CollectReply{Cycle: 9, Reports: []StageReport{
		{StageID: 1, JobID: 2, Demand: Rates{3, 4}, Usage: Rates{5, 6}},
	}})
	// Every strict prefix must fail cleanly, never panic.
	for i := 1; i < len(full); i++ {
		if _, err := Decode(full[:i]); err == nil {
			t.Errorf("Decode of %d/%d byte prefix succeeded", i, len(full))
		}
	}
}

func TestDecodeTrailingGarbage(t *testing.T) {
	buf := Encode(nil, &Heartbeat{SentUnixMicros: 1})
	buf = append(buf, 0x00)
	if _, err := Decode(buf); !errors.Is(err, ErrTrailingBytes) {
		t.Errorf("Decode = %v, want ErrTrailingBytes", err)
	}
}

func TestDecodeHugeSliceRejected(t *testing.T) {
	// Hand-craft a CollectReply claiming 2^30 reports with no payload. The
	// decoder must reject the length before allocating.
	e := NewEncoder([]byte{byte(TCollectReply)})
	e.Uint64(1)       // cycle
	e.Uint64(1 << 30) // report count
	if _, err := Decode(e.Bytes()); !errors.Is(err, ErrBadLength) {
		t.Errorf("Decode = %v, want ErrBadLength", err)
	}
}

func TestNewCoversAllTypes(t *testing.T) {
	for ty := TRegister; ty <= TShardMap; ty++ {
		m := New(ty)
		if m == nil {
			t.Errorf("New(%s) = nil", ty)
			continue
		}
		if m.Type() != ty {
			t.Errorf("New(%s).Type() = %s", ty, m.Type())
		}
	}
	if New(0) != nil {
		t.Error("New(0) != nil")
	}
	if New(200) != nil {
		t.Error("New(200) != nil")
	}
}

func TestRatesArithmetic(t *testing.T) {
	a := Rates{10, 20}
	b := Rates{1, 2}
	if got := a.Add(b); got != (Rates{11, 22}) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != (Rates{9, 18}) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(0.5); got != (Rates{5, 10}) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Total(); got != 30 {
		t.Errorf("Total = %g", got)
	}
	if a.IsZero() {
		t.Error("IsZero(nonzero) = true")
	}
	if !(Rates{}).IsZero() {
		t.Error("IsZero(zero) = false")
	}
}

func TestStringers(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{TCollect.String(), "Collect"},
		{TEnforce.String(), "Enforce"},
		{MsgType(250).String(), "MsgType(250)"},
		{ClassData.String(), "data"},
		{ClassMeta.String(), "meta"},
		{OpClass(9).String(), "OpClass(9)"},
		{RoleStage.String(), "stage"},
		{RoleGlobal.String(), "global"},
		{Role(9).String(), "Role(9)"},
		{ActionSetLimit.String(), "set-limit"},
		{ActionPause.String(), "pause"},
		{RuleAction(9).String(), "RuleAction(9)"},
	}
	for _, tc := range cases {
		if tc.got != tc.want {
			t.Errorf("String() = %q, want %q", tc.got, tc.want)
		}
	}
}

func TestErrorReplyIsError(t *testing.T) {
	var err error = &ErrorReply{Code: CodeBadMessage, Text: "boom"}
	if err.Error() != "remote error 2: boom" {
		t.Errorf("Error() = %q", err.Error())
	}
}

// randomReports builds a random report slice for property tests.
func randomReports(r *rand.Rand, n int) []StageReport {
	reports := make([]StageReport, n)
	for i := range reports {
		reports[i] = StageReport{
			StageID: r.Uint64(),
			JobID:   r.Uint64() % 1000,
			Demand:  Rates{r.Float64() * 1e6, r.Float64() * 1e5},
			Usage:   Rates{r.Float64() * 1e6, r.Float64() * 1e5},
		}
	}
	return reports
}

func TestCollectReplyRoundTripProperty(t *testing.T) {
	f := func(cycle uint64, seed int64, n uint8) bool {
		m := &CollectReply{
			Cycle:   cycle,
			Reports: randomReports(rand.New(rand.NewSource(seed)), int(n)%64),
		}
		buf := Encode(nil, m)
		got, err := Decode(buf)
		if err != nil {
			return false
		}
		gr := got.(*CollectReply)
		if gr.Cycle != m.Cycle || len(gr.Reports) != len(m.Reports) {
			return false
		}
		for i := range m.Reports {
			if gr.Reports[i] != m.Reports[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestEnforceRoundTripProperty(t *testing.T) {
	f := func(cycle uint64, seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		rules := make([]Rule, int(n)%64)
		for i := range rules {
			rules[i] = Rule{
				StageID: r.Uint64(),
				JobID:   r.Uint64() % 1000,
				Action:  RuleAction(1 + r.Intn(3)),
				Limit:   Rates{r.Float64() * 1e6, r.Float64() * 1e5},
			}
		}
		m := &Enforce{Cycle: cycle, Rules: rules}
		got, err := Decode(Encode(nil, m))
		if err != nil {
			return false
		}
		ge := got.(*Enforce)
		if ge.Cycle != m.Cycle || len(ge.Rules) != len(m.Rules) {
			return false
		}
		for i := range m.Rules {
			if ge.Rules[i] != m.Rules[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestDecodeFuzzNoPanic throws random bytes at Decode; it must either parse
// or error but never panic or allocate unbounded memory.
func TestDecodeFuzzNoPanic(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		n := r.Intn(200)
		buf := make([]byte, n)
		r.Read(buf)
		_, _ = Decode(buf) // must not panic
	}
}

func BenchmarkEncodeCollectReply(b *testing.B) {
	m := &CollectReply{Cycle: 1, Reports: randomReports(rand.New(rand.NewSource(1)), 50)}
	buf := make([]byte, 0, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = Encode(buf[:0], m)
	}
}

func BenchmarkDecodeCollectReply(b *testing.B) {
	m := &CollectReply{Cycle: 1, Reports: randomReports(rand.New(rand.NewSource(1)), 50)}
	buf := Encode(nil, m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeEnforce2500(b *testing.B) {
	rules := make([]Rule, 2500)
	for i := range rules {
		rules[i] = Rule{StageID: uint64(i), JobID: uint64(i % 16), Action: ActionSetLimit, Limit: Rates{1000, 100}}
	}
	m := &Enforce{Cycle: 1, Rules: rules}
	buf := make([]byte, 0, 1<<16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = Encode(buf[:0], m)
	}
}
