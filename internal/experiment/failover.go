package experiment

import (
	"context"
	"errors"
	"fmt"
	"os"
	"time"

	"github.com/dsrhaslab/sdscale/internal/cluster"
	"github.com/dsrhaslab/sdscale/internal/controller"
	"github.com/dsrhaslab/sdscale/internal/rpc"
	"github.com/dsrhaslab/sdscale/internal/store"
	"github.com/dsrhaslab/sdscale/internal/telemetry"
	"github.com/dsrhaslab/sdscale/internal/transport/simnet"
	"github.com/dsrhaslab/sdscale/internal/wire"
)

// FailoverNodes is the flat deployment size the failover scenario runs at.
// The paper's flat design centralizes all control state in one process
// (§IV-A); this scenario measures what that costs when the process dies.
const FailoverNodes = 1000

// failover scenario timing. Detection is tuned fast so the whole scenario
// fits in seconds: the primary syncs state (and renews its lease) every
// 25ms, and the standby declares it dead after 150ms of silence — the same
// multiple of the sync interval the controller defaults use.
const (
	failoverCyclePeriod   = 100 * time.Millisecond
	failoverSyncInterval  = 25 * time.Millisecond
	failoverLeaseTimeout  = 150 * time.Millisecond
	failoverParentTimeout = 300 * time.Millisecond
	failoverCallTimeout   = 250 * time.Millisecond
	failoverMaxFailures   = 2
	failoverProbeInterval = 25 * time.Millisecond
	// failoverRecoverCycles is the acceptance bound: control cycles must
	// resume within this many control intervals of the crash.
	failoverRecoverCycles = 5
	// Hard wall-clock budgets for the scenario's wait loops; generous so a
	// loaded CI runner times out the experiment rather than deadlocking it.
	failoverSettleBudget  = 10 * time.Second
	failoverRecoverBudget = 10 * time.Second
	failoverDeposeBudget  = 10 * time.Second
)

// FailoverResult reports the controller-failover scenario's outcome.
type FailoverResult struct {
	// Nodes is the stage count.
	Nodes int
	// OldEpoch and NewEpoch are the leadership epochs before the crash and
	// after the standby's promotion.
	OldEpoch, NewEpoch uint64
	// RecoveryGap is the wall-clock time from the primary's crash to the
	// standby's first completed control cycle; CyclesToRecover is the same
	// gap in control intervals (rounded up).
	RecoveryGap     time.Duration
	CyclesToRecover int
	// RecoveredCycles is how many cycles the promoted standby completed.
	RecoveredCycles uint64
	// ReHomed is how many children the promoted standby ended up owning
	// (must equal Nodes: no orphans).
	ReHomed int
	// EpochsAdopted is how many stages ended the run fencing at the new
	// leadership epoch.
	EpochsAdopted int
	// StageReRegistrations sums stage-initiated re-homes (orphaned stages
	// that re-registered on their own after upstream silence).
	StageReRegistrations uint64
	// FencedAtStages sums stale-epoch rejections issued by stages.
	FencedAtStages uint64
	// FencedSyncs counts StateSyncs from the deposed primary that the
	// promoted standby rejected.
	FencedSyncs uint64
	// StaleProbeRejected and StaleProbeIgnored report the explicit fencing
	// probe: an Enforce replayed with the dead primary's epoch must be
	// rejected with the current epoch and must not change the stage's rule.
	StaleProbeRejected, StaleProbeIgnored bool
	// PrimaryDeposed reports whether the healed zombie primary observed its
	// fencing and stepped down (its Run returned ErrDeposed).
	PrimaryDeposed bool
	// Primary and Standby are the two controllers' fault telemetry.
	Primary, Standby telemetry.FaultSummary

	// The remaining fields report the durability act: both controllers are
	// killed, and a cold controller restarts from the promoted standby's
	// on-disk store on a fresh host — no surviving process, no mirror,
	// no stage able to find it by address.

	// RestartEpoch is the leadership epoch the cold-restarted controller
	// leads with; it must supersede NewEpoch without any handoff.
	RestartEpoch uint64
	// RestartGap is the wall-clock time from the restart's store open to
	// its first completed control cycle; RestartCycles is the same gap in
	// control intervals (rounded up).
	RestartGap    time.Duration
	RestartCycles int
	// RestartMembers is how many children the restarted controller
	// recovered purely from its store.
	RestartMembers int
	// RulesRecovered and RulesLost compare every stage's live rule (frozen
	// when cycles stopped) against the state replayed from disk: zero rule
	// loss means every stage accounted for and RulesLost == 0.
	RulesRecovered, RulesLost int
	// WeightsRecovered is the number of job weights replayed from disk.
	WeightsRecovered int
	// ReplayRecords and ReplayDuration digest the restart's log replay;
	// ReplayHadSnapshot reports whether a compacted snapshot seeded it.
	ReplayRecords     uint64
	ReplayDuration    time.Duration
	ReplayHadSnapshot bool
	// RestartStaleProbeRejected reports whether an Enforce stamped with the
	// killed standby's epoch was rejected after the restart — epoch fencing
	// must hold across a full control-plane death, not just a failover.
	RestartStaleProbeRejected bool
}

// Failover runs the controller-crash scenario: a flat deployment with a
// warm standby, control cycles paced at a fixed period, and the primary's
// host crashed mid-run. It measures how long the control plane goes dark
// (lease expiry, standby promotion, membership adoption, first cycle),
// verifies every orphaned stage is re-homed, and proves epoch fencing: the
// deposed primary's messages are rejected everywhere, forcing it to step
// down once it reconnects.
func Failover(ctx context.Context, o Options) (FailoverResult, error) {
	o = o.withDefaults()
	nodes := o.scaled(FailoverNodes)

	// Every controller persists its control-plane mutations under dataDir,
	// so the final act — kill both, restart from disk — has a log to replay.
	dataDir, err := os.MkdirTemp("", "sdscale-failover-")
	if err != nil {
		return FailoverResult{}, fmt.Errorf("experiment failover: data dir: %w", err)
	}
	defer os.RemoveAll(dataDir)

	c, err := cluster.Build(cluster.Config{
		Topology:      cluster.Flat,
		Stages:        nodes,
		Jobs:          o.Jobs,
		Net:           *o.Net,
		CallTimeout:   failoverCallTimeout,
		MaxFailures:   failoverMaxFailures,
		ProbeInterval: failoverProbeInterval,
		Standby:       true,
		LeaseTimeout:  failoverLeaseTimeout,
		SyncInterval:  failoverSyncInterval,
		ParentTimeout: failoverParentTimeout,
		DataDir:       dataDir,
	})
	if err != nil {
		return FailoverResult{}, fmt.Errorf("experiment failover: %w", err)
	}
	defer c.Close()
	g, sb := c.Global, c.Standby

	r := FailoverResult{Nodes: nodes, OldEpoch: g.Epoch()}

	// Warm up the primary (its sync loop replicates to the standby in the
	// background from the moment it was built).
	for i := 0; i < o.Warmup; i++ {
		if _, err := g.RunCycle(ctx); err != nil {
			return r, fmt.Errorf("experiment failover: warmup: %w", err)
		}
	}
	g.Recorder().Reset()

	// Run both controllers the way a real deployment would: the primary
	// paces cycles, the standby waits on its lease.
	runCtx, stopRun := context.WithCancel(ctx)
	defer stopRun()
	primaryDone := make(chan error, 1)
	go func() { primaryDone <- g.Run(runCtx, failoverCyclePeriod) }()
	standbyDone := make(chan error, 1)
	go func() { standbyDone <- sb.Run(runCtx, failoverCyclePeriod) }()

	// A couple of paced steady-state cycles before pulling the plug.
	if err := waitCycles(ctx, g.Recorder(), 2, failoverSettleBudget); err != nil {
		return r, fmt.Errorf("experiment failover: settle: %w", err)
	}

	// Crash the primary's host: connections die and dials fail, and —
	// unlike a partition — test teardown does not resurrect it.
	c.Net.Schedule([]simnet.FaultEvent{{Host: "global", Action: simnet.FaultCrash}}).Wait()
	crashAt := time.Now()

	// Recovery: the standby's lease must expire, it must promote, adopt the
	// mirrored fleet, and complete a control cycle.
	if err := waitCycles(ctx, sb.Recorder(), 1, failoverRecoverBudget); err != nil {
		return r, fmt.Errorf("experiment failover: standby never resumed cycles: %w", err)
	}
	r.RecoveryGap = time.Since(crashAt)
	r.CyclesToRecover = int((r.RecoveryGap + failoverCyclePeriod - 1) / failoverCyclePeriod)
	r.NewEpoch = sb.Epoch()

	// Re-homing: every stage the dead primary owned must end up owned by
	// the new primary (adoption from the mirror, or self re-registration —
	// whichever wins; duplicate registrations are reconnects, not errors).
	deadline := time.Now().Add(failoverRecoverBudget)
	for sb.NumChildren() < nodes && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	r.ReHomed = sb.NumChildren()

	// Fencing probe: replay an Enforce stamped with the dead primary's
	// epoch straight at a stage. It must be rejected with a stale-epoch
	// error naming the new epoch, and must not change the stage's rule.
	v := c.Stages[0]
	probeRule := wire.Rule{
		StageID: v.Info().ID,
		JobID:   v.Info().JobID,
		Action:  wire.ActionSetLimit,
		Limit:   wire.Rates{12345, 12345},
	}
	cli, err := rpc.Dial(ctx, c.Net.Host("failover-prober"), v.Info().Addr, rpc.DialOptions{})
	if err != nil {
		return r, fmt.Errorf("experiment failover: probe dial: %w", err)
	}
	_, callErr := cli.Call(ctx, &wire.Enforce{Cycle: 1 << 40, Rules: []wire.Rule{probeRule}, Epoch: r.OldEpoch})
	cli.Close()
	if cur, ok := rpc.StaleEpochError(callErr); ok && cur == r.NewEpoch {
		r.StaleProbeRejected = true
	}
	if rule, ok := v.LastRule(); !ok || rule.Limit != probeRule.Limit {
		r.StaleProbeIgnored = true
	}

	// Heal the crashed host, modeling the old primary's process coming back
	// as a zombie that still believes it leads. Its first contact with the
	// fleet — a rejected state sync or a fenced child call — must make it
	// step down, so its Run exits with ErrDeposed.
	c.Net.Host("global").SetPartitioned(false)
	select {
	case err := <-primaryDone:
		r.PrimaryDeposed = errors.Is(err, controller.ErrDeposed)
		if !r.PrimaryDeposed {
			return r, fmt.Errorf("experiment failover: primary exited with %v, want ErrDeposed", err)
		}
	case <-time.After(failoverDeposeBudget):
		return r, fmt.Errorf("experiment failover: healed zombie primary was never deposed")
	case <-ctx.Done():
		return r, ctx.Err()
	}

	stopRun()
	<-standbyDone

	for _, v := range c.Stages {
		r.FencedAtStages += v.FencedCalls()
		r.StageReRegistrations += v.ReRegistrations()
		if v.Epoch() == r.NewEpoch {
			r.EpochsAdopted++
		}
	}
	r.RecoveredCycles = sb.Recorder().Cycles()
	r.FencedSyncs = sb.FencedSyncs()
	r.Primary = g.Faults().Summarize()
	r.Standby = sb.Faults().Summarize()

	// --- Durability act: kill both controllers, restart from disk. -------

	// Freeze every stage's live rule while no cycle is running: this is
	// exactly the state the restarted controller must reproduce from its
	// log — any divergence is rule loss.
	liveRules := make(map[uint64]wire.Rule, len(c.Stages))
	for _, v := range c.Stages {
		if rule, ok := v.LastRule(); ok {
			liveRules[v.Info().ID] = rule
		}
	}

	// Kill what is left of the control plane: the deposed zombie and the
	// promoted standby. Closing them flushes and releases their stores —
	// torn-tail crash semantics are the store package's own test surface;
	// this act proves the control-plane state survives end to end.
	g.Close()
	sb.Close()

	restartStart := time.Now()
	st, err := store.Open(store.Options{Dir: cluster.StoreDir(dataDir, cluster.StandbyHost(0))})
	if err != nil {
		return r, fmt.Errorf("experiment failover: reopen standby store: %w", err)
	}
	rec := st.Recovered()
	r.WeightsRecovered = len(rec.State.Weights)

	// Zero rule loss: every frozen stage rule must be present in the
	// replayed state, limit for limit.
	recovered := make(map[uint64][]wire.Rule, len(rec.State.Members))
	for _, m := range rec.State.Members {
		recovered[m.ID] = m.Rules
	}
	for id, rule := range liveRules {
		found := false
		for _, rr := range recovered[id] {
			if rr.JobID == rule.JobID && rr.Action == rule.Action && rr.Limit == rule.Limit {
				found = true
				break
			}
		}
		if found {
			r.RulesRecovered++
		} else {
			r.RulesLost++
		}
	}

	// The restarted controller runs on a host no stage has in its parent
	// list: every child it ends up with was recovered from disk and
	// re-adopted by dialing, never re-registered.
	g2, err := controller.NewGlobal(controller.GlobalConfig{
		Network:       c.Net.Host("global-restart"),
		ListenAddr:    ":0",
		ID:            9,
		Capacity:      c.Config().Capacity,
		CallTimeout:   failoverCallTimeout,
		MaxFailures:   failoverMaxFailures,
		ProbeInterval: failoverProbeInterval,
		Store:         st,
	})
	if err != nil {
		st.Close()
		return r, fmt.Errorf("experiment failover: restart controller: %w", err)
	}
	defer g2.Close()
	if err := g2.Recover(ctx); err != nil {
		return r, fmt.Errorf("experiment failover: recover: %w", err)
	}
	sst := g2.Stats().Store
	r.ReplayRecords = sst.Replay.Records
	r.ReplayDuration = sst.Replay.Duration
	r.ReplayHadSnapshot = sst.Replay.HadSnapshot

	restartCtx, stopRestart := context.WithCancel(ctx)
	defer stopRestart()
	restartDone := make(chan error, 1)
	go func() { restartDone <- g2.Run(restartCtx, failoverCyclePeriod) }()
	if err := waitCycles(ctx, g2.Recorder(), 1, failoverRecoverBudget); err != nil {
		return r, fmt.Errorf("experiment failover: restarted controller never cycled: %w", err)
	}
	r.RestartGap = time.Since(restartStart)
	r.RestartCycles = int((r.RestartGap + failoverCyclePeriod - 1) / failoverCyclePeriod)
	r.RestartEpoch = g2.Epoch()

	deadline = time.Now().Add(failoverRecoverBudget)
	for g2.NumChildren() < nodes && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	r.RestartMembers = g2.NumChildren()

	// Fencing across the full death: the killed standby's epoch must be
	// rejected by the fleet once the restarted controller's first cycle has
	// propagated its bumped epoch.
	cli, err = rpc.Dial(ctx, c.Net.Host("restart-prober"), v.Info().Addr, rpc.DialOptions{})
	if err != nil {
		return r, fmt.Errorf("experiment failover: restart probe dial: %w", err)
	}
	_, callErr = cli.Call(ctx, &wire.Enforce{Cycle: 1 << 41, Rules: []wire.Rule{probeRule}, Epoch: r.NewEpoch})
	cli.Close()
	if cur, ok := rpc.StaleEpochError(callErr); ok && cur == r.RestartEpoch {
		r.RestartStaleProbeRejected = true
	}

	stopRestart()
	<-restartDone
	return r, nil
}

// waitCycles polls the recorder until it has seen at least want cycles.
func waitCycles(ctx context.Context, rec *telemetry.CycleRecorder, want uint64, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	for rec.Cycles() < want {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("timed out waiting for %d cycles (have %d)", want, rec.Cycles())
		}
		time.Sleep(2 * time.Millisecond)
	}
	return nil
}

// PrintFailover renders the scenario's outcome.
func PrintFailover(o Options, r FailoverResult) {
	o = o.withDefaults()
	o.printf("failover — flat control plane with warm standby, %d nodes, primary crashed mid-run\n", r.Nodes)
	o.printf("  leadership epoch        %d -> %d\n", r.OldEpoch, r.NewEpoch)
	o.printf("  control gap             %v (%d control intervals of %v)\n",
		r.RecoveryGap.Round(time.Millisecond), r.CyclesToRecover, failoverCyclePeriod)
	o.printf("  re-homed                %d/%d children (%d at new epoch, %d stage-initiated re-homes)\n",
		r.ReHomed, r.Nodes, r.EpochsAdopted, r.StageReRegistrations)
	o.printf("  recovered cycles        %d completed by the promoted standby\n", r.RecoveredCycles)
	o.printf("  fencing                 %d stale calls rejected at stages, %d stale syncs rejected at standby\n",
		r.FencedAtStages, r.FencedSyncs)
	o.printf("  stale-enforce probe     rejected=%v rule-unchanged=%v\n", r.StaleProbeRejected, r.StaleProbeIgnored)
	o.printf("  zombie primary          deposed=%v (step_downs=%d)\n", r.PrimaryDeposed, r.Primary.StepDowns)
	o.printf("  standby faults          %v\n", r.Standby)
	o.printf("  -- durability act: both controllers killed, cold restart from disk --\n")
	o.printf("  restart epoch           %d -> %d\n", r.NewEpoch, r.RestartEpoch)
	o.printf("  restart gap             %v (%d control intervals; replayed %d records in %v, snapshot=%v)\n",
		r.RestartGap.Round(time.Millisecond), r.RestartCycles, r.ReplayRecords,
		r.ReplayDuration.Round(time.Microsecond), r.ReplayHadSnapshot)
	o.printf("  recovered from disk     %d/%d members, %d job weights\n", r.RestartMembers, r.Nodes, r.WeightsRecovered)
	o.printf("  rule loss               %d recovered, %d lost\n", r.RulesRecovered, r.RulesLost)
	o.printf("  stale probe after kill  rejected=%v\n\n", r.RestartStaleProbeRejected)
}

// CheckFailover asserts the scenario's dependability claims: exactly one
// promotion with a bumped epoch, cycles resuming within the recovery budget,
// every orphaned child re-homed, zero stale-epoch messages accepted
// anywhere, and the zombie primary fenced into stepping down.
func CheckFailover(r FailoverResult) error {
	if r.Standby.Promotions != 1 {
		return fmt.Errorf("failover: %d promotions, want exactly 1", r.Standby.Promotions)
	}
	if r.NewEpoch <= r.OldEpoch {
		return fmt.Errorf("failover: promoted epoch %d does not supersede %d", r.NewEpoch, r.OldEpoch)
	}
	if r.CyclesToRecover > failoverRecoverCycles {
		return fmt.Errorf("failover: cycles resumed after %d control intervals (%v), want <= %d",
			r.CyclesToRecover, r.RecoveryGap, failoverRecoverCycles)
	}
	if r.ReHomed != r.Nodes {
		return fmt.Errorf("failover: only %d/%d children re-homed to the new primary", r.ReHomed, r.Nodes)
	}
	if r.EpochsAdopted != r.Nodes {
		return fmt.Errorf("failover: only %d/%d stages fence at the new epoch", r.EpochsAdopted, r.Nodes)
	}
	if r.FencedAtStages == 0 {
		return fmt.Errorf("failover: no stage ever rejected a stale-epoch call")
	}
	if !r.StaleProbeRejected {
		return fmt.Errorf("failover: stale-epoch Enforce probe was not rejected with the new epoch")
	}
	if !r.StaleProbeIgnored {
		return fmt.Errorf("failover: stale-epoch Enforce probe changed a stage's rule")
	}
	if !r.PrimaryDeposed {
		return fmt.Errorf("failover: zombie primary was never deposed")
	}
	if r.Primary.StepDowns != 1 {
		return fmt.Errorf("failover: primary recorded %d step-downs, want exactly 1", r.Primary.StepDowns)
	}
	if r.Standby.MaxControlGap <= 0 {
		return fmt.Errorf("failover: promoted standby recorded no control gap")
	}
	// Durability act.
	if r.RestartEpoch <= r.NewEpoch {
		return fmt.Errorf("failover: restarted epoch %d does not supersede the killed standby's %d", r.RestartEpoch, r.NewEpoch)
	}
	if r.RestartMembers != r.Nodes {
		return fmt.Errorf("failover: cold restart recovered %d/%d members from disk", r.RestartMembers, r.Nodes)
	}
	if r.RulesLost != 0 {
		return fmt.Errorf("failover: %d stage rules lost across the kill-both restart", r.RulesLost)
	}
	if r.RulesRecovered != r.Nodes {
		return fmt.Errorf("failover: only %d/%d stage rules recovered from disk", r.RulesRecovered, r.Nodes)
	}
	if r.WeightsRecovered == 0 {
		return fmt.Errorf("failover: no job weights recovered from disk")
	}
	if !r.RestartStaleProbeRejected {
		return fmt.Errorf("failover: the killed standby's epoch was still accepted after the restart")
	}
	return nil
}
