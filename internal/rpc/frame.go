// Package rpc implements the request/response protocol the sdscale control
// plane speaks between controllers and data-plane stages.
//
// The paper's prototype uses gRPC; rpc provides the equivalent semantics on
// top of any transport.Network with the standard library only:
//
//   - length-prefixed frames carrying wire messages;
//   - request multiplexing: one connection carries many in-flight calls,
//     correlated by request ID, so a controller keeps exactly one connection
//     per child regardless of cycle concurrency;
//   - per-connection ordered request handling on the server (like a gRPC
//     stream), with concurrency across connections;
//   - deadline and cancellation propagation: a call abandoned via its
//     context sends a best-effort cancel frame so the server can skip the
//     request if it has not started executing, and responses that arrive
//     after abandonment are counted (Client.LateResponses) and dropped;
//   - connection fault recovery via ReconnectingClient: redial with
//     exponential backoff and jitter, failing in-flight calls fast;
//   - an asynchronous call API (Client.Go returning a pooled *Call handle)
//     that pipelines many requests back-to-back over one connection — the
//     fast path of the control cycle's collect and enforce fan-out;
//   - a scatter-gather helper with bounded parallelism and cooperative
//     cancellation, the blocking fan-out primitive kept for paper-fidelity
//     reproduction of the prototype's bounded thread pool.
package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"

	"github.com/dsrhaslab/sdscale/internal/wire"
)

// frameBufs recycles frame encode buffers across clients, servers, and
// connections: a controller fanning out to thousands of children would
// otherwise regrow an encode buffer per call per cycle. Decoded messages
// never alias these buffers (see readFrame), so recycling is safe.
var frameBufs = sync.Pool{New: func() any {
	b := make([]byte, 0, 1024)
	return &b
}}

// maxPooledFrameBuf bounds what goes back into the pool: the occasional
// giant Enforce batch should not pin megabytes inside it.
const maxPooledFrameBuf = 1 << 20

func getFrameBuf() *[]byte { return frameBufs.Get().(*[]byte) }

func putFrameBuf(bp *[]byte) {
	if cap(*bp) > maxPooledFrameBuf {
		return
	}
	frameBufs.Put(bp)
}

// MaxFrameSize bounds a single frame; larger announcements are treated as
// protocol corruption. 64 MiB comfortably fits an Enforce batch for a full
// 10,000-stage cluster.
const MaxFrameSize = 64 << 20

// frame kinds.
const (
	kindRequest  = 0
	kindResponse = 1
	// kindCancel withdraws an earlier request by ID. It carries no message
	// body. The server drops the request if it is still queued (or, when it
	// is currently executing, suppresses the response); no reply is ever
	// sent for a cancel frame. Because frames are delivered in order, a
	// cancel always trails the request it refers to.
	kindCancel = 2
)

// ErrFrameTooLarge reports an oversized frame announcement.
var ErrFrameTooLarge = errors.New("rpc: frame exceeds maximum size")

// frameHeader is the fixed metadata carried by every frame.
type frameHeader struct {
	id   uint64 // request correlation ID
	kind byte   // kindRequest or kindResponse
}

// appendFrame encodes a complete frame (length prefix, header, message) into
// buf and returns the extended slice.
func appendFrame(buf []byte, h frameHeader, m wire.Message) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0) // length placeholder
	buf = binary.AppendUvarint(buf, h.id)
	buf = append(buf, h.kind)
	buf = wire.Encode(buf, m)
	binary.BigEndian.PutUint32(buf[start:], uint32(len(buf)-start-4))
	return buf
}

// appendCancelFrame encodes a body-less cancel frame for request id into buf
// and returns the extended slice.
func appendCancelFrame(buf []byte, id uint64) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0) // length placeholder
	buf = binary.AppendUvarint(buf, id)
	buf = append(buf, kindCancel)
	binary.BigEndian.PutUint32(buf[start:], uint32(len(buf)-start-4))
	return buf
}

// readFrame reads one frame from r into buf (which is grown as needed) and
// decodes it. The returned message does not alias buf. Cancel frames carry
// no body and decode to a nil message.
func readFrame(r io.Reader, buf []byte) (frameHeader, wire.Message, []byte, error) {
	var lenb [4]byte
	if _, err := io.ReadFull(r, lenb[:]); err != nil {
		return frameHeader{}, nil, buf, err
	}
	n := binary.BigEndian.Uint32(lenb[:])
	if n > MaxFrameSize {
		return frameHeader{}, nil, buf, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return frameHeader{}, nil, buf, err
	}

	id, sz := binary.Uvarint(buf)
	if sz <= 0 {
		return frameHeader{}, nil, buf, errors.New("rpc: bad frame header")
	}
	if sz >= len(buf) {
		return frameHeader{}, nil, buf, errors.New("rpc: truncated frame header")
	}
	h := frameHeader{id: id, kind: buf[sz]}
	if h.kind == kindCancel {
		return h, nil, buf, nil
	}
	m, err := wire.Decode(buf[sz+1:])
	if err != nil {
		return frameHeader{}, nil, buf, err
	}
	return h, m, buf, nil
}
