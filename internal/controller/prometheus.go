package controller

import (
	"io"

	"github.com/dsrhaslab/sdscale/internal/telemetry"
	"github.com/dsrhaslab/sdscale/internal/trace"
)

// Tracer returns the tracer the controller records cycle, phase, and
// per-call spans into; nil when tracing is off.
func (g *Global) Tracer() *trace.Tracer { return g.cfg.Tracer }

// Tracer returns the aggregator's tracer; nil when tracing is off.
func (a *Aggregator) Tracer() *trace.Tracer { return a.cfg.Tracer }

// Tracer returns the peer's tracer; nil when tracing is off.
func (p *Peer) Tracer() *trace.Tracer { return p.cfg.Tracer }

// WritePrometheus renders the controller's operational counters, fault
// telemetry, and cycle-phase latency histograms in the Prometheus text
// exposition format. It implements trace.MetricsSource, so a Global plugs
// into trace.StartDebug directly via DebugServer.AddMetrics.
func (g *Global) WritePrometheus(w io.Writer) error {
	if err := promStats(w, "global", g.Stats()); err != nil {
		return err
	}
	if err := telemetry.PromFaults(w, "sdscale_controller_fault", g.faults, "controller", "global"); err != nil {
		return err
	}
	return promRecorder(w, "global", g.recorder)
}

// WritePrometheus renders the aggregator's counters and histograms; see
// (*Global).WritePrometheus.
func (a *Aggregator) WritePrometheus(w io.Writer) error {
	if err := promStats(w, "aggregator", a.Stats()); err != nil {
		return err
	}
	return telemetry.PromFaults(w, "sdscale_controller_fault", a.faults, "controller", "aggregator")
}

// WritePrometheus renders the peer's counters and histograms; see
// (*Global).WritePrometheus.
func (p *Peer) WritePrometheus(w io.Writer) error {
	if err := promStats(w, "peer", p.Stats()); err != nil {
		return err
	}
	if err := telemetry.PromFaults(w, "sdscale_controller_fault", p.faults, "controller", "peer"); err != nil {
		return err
	}
	return promRecorder(w, "peer", p.recorder)
}

func promStats(w io.Writer, role string, st ControllerStats) error {
	labels := []string{"controller", role}
	gauges := []struct {
		name  string
		value float64
	}{
		{"sdscale_controller_children", float64(st.Children)},
		{"sdscale_controller_stages", float64(st.Stages)},
		{"sdscale_controller_peers", float64(st.Peers)},
		{"sdscale_controller_quarantined", float64(st.Quarantined)},
		{"sdscale_controller_epoch", float64(st.Epoch)},
		{"sdscale_controller_collect_in_flight", float64(st.Pipeline.CollectInFlight)},
		{"sdscale_controller_collect_in_flight_peak", float64(st.Pipeline.CollectInFlightPeak)},
		{"sdscale_controller_enforce_in_flight", float64(st.Pipeline.EnforceInFlight)},
		{"sdscale_controller_enforce_in_flight_peak", float64(st.Pipeline.EnforceInFlightPeak)},
		{"sdscale_controller_cycle_allocs_last", float64(st.Pipeline.LastCycleAllocs)},
		{"sdscale_controller_cycle_allocs_mean", st.Pipeline.MeanCycleAllocs},
	}
	for _, g := range gauges {
		if err := telemetry.PromGauge(w, g.name, g.value, labels...); err != nil {
			return err
		}
	}
	counters := []struct {
		name  string
		value uint64
	}{
		{"sdscale_controller_call_errors_total", st.CallErrors},
		{"sdscale_controller_evictions_total", st.Evictions},
		{"sdscale_controller_fenced_calls_total", st.FencedCalls},
		{"sdscale_controller_rehomes_total", st.ReHomes},
	}
	for _, c := range counters {
		if err := telemetry.PromCounter(w, c.name, c.value, labels...); err != nil {
			return err
		}
	}
	if st.Store != nil {
		s := st.Store
		storeGauges := []struct {
			name  string
			value float64
		}{
			{"sdscale_store_log_bytes", float64(s.LogBytes)},
			{"sdscale_store_log_records", float64(s.LogRecords)},
			{"sdscale_store_pending_bytes", float64(s.PendingBytes)},
			{"sdscale_store_snapshot_age_seconds", s.SnapshotAge.Seconds()},
			{"sdscale_store_fsync_last_seconds", s.FsyncLast.Seconds()},
			{"sdscale_store_fsync_mean_seconds", s.FsyncMean.Seconds()},
			{"sdscale_store_fsync_max_seconds", s.FsyncMax.Seconds()},
			{"sdscale_store_replay_seconds", s.Replay.Duration.Seconds()},
		}
		for _, g := range storeGauges {
			if err := telemetry.PromGauge(w, g.name, g.value, labels...); err != nil {
				return err
			}
		}
		storeCounters := []struct {
			name  string
			value uint64
		}{
			{"sdscale_store_appended_records_total", s.AppendedRecords},
			{"sdscale_store_fsyncs_total", s.Fsyncs},
			{"sdscale_store_snapshots_total", s.Snapshots},
			{"sdscale_store_replay_records_total", s.Replay.Records},
			{"sdscale_store_replay_skipped_total", s.Replay.Skipped},
			{"sdscale_store_replay_truncated_bytes_total", uint64(s.Replay.TruncatedBytes)},
		}
		for _, c := range storeCounters {
			if err := telemetry.PromCounter(w, c.name, c.value, labels...); err != nil {
				return err
			}
		}
	}
	return nil
}

func promRecorder(w io.Writer, role string, r *telemetry.CycleRecorder) error {
	for _, p := range []telemetry.Phase{telemetry.PhaseCollect, telemetry.PhaseCompute, telemetry.PhaseEnforce, telemetry.PhaseTotal} {
		h := r.Phase(p)
		if h.Count() == 0 {
			continue
		}
		if err := telemetry.PromHistogram(w, "sdscale_controller_cycle_phase", h,
			"controller", role, "phase", p.String()); err != nil {
			return err
		}
	}
	return nil
}
