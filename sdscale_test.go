package sdscale_test

import (
	"context"
	"fmt"
	"log"
	"testing"
	"time"

	"github.com/dsrhaslab/sdscale"
)

// TestFacadeFlatControlPlane exercises the public API end to end: stages,
// controller, a cycle, and rule observation — what a downstream user's
// first program does.
func TestFacadeFlatControlPlane(t *testing.T) {
	net := sdscale.NewSimNet(sdscale.SimNetConfig{})
	ctx := context.Background()

	var stages []*sdscale.VirtualStage
	for i := 0; i < 4; i++ {
		st, err := sdscale.StartVirtualStage(sdscale.StageConfig{
			ID:        uint64(i + 1),
			JobID:     uint64(i%2 + 1),
			Weight:    1,
			Generator: sdscale.ConstantWorkload{Rates: sdscale.Rates{1000, 100}},
			Network:   net.Host(fmt.Sprintf("stage-%d", i+1)),
		})
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		stages = append(stages, st)
	}

	g, err := sdscale.NewGlobal(sdscale.GlobalConfig{
		Network:   net.Host("controller"),
		Algorithm: sdscale.PSFA(),
		Capacity:  sdscale.Rates{2000, 200},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	for _, st := range stages {
		if err := g.AddStage(ctx, st.Info()); err != nil {
			t.Fatal(err)
		}
	}

	b, err := g.RunCycle(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if b.Total <= 0 {
		t.Error("zero cycle latency")
	}
	for _, st := range stages {
		rule, ok := st.LastRule()
		if !ok {
			t.Fatalf("stage %d unruled", st.Info().ID)
		}
		if rule.Action != sdscale.ActionSetLimit {
			t.Errorf("action = %v", rule.Action)
		}
		if got := rule.Limit[sdscale.ClassData]; got != 500 {
			t.Errorf("limit = %g, want 500", got)
		}
	}
}

// TestFacadeClusterHarness verifies BuildCluster + UsageCollector work from
// the public API, including the experiment network model.
func TestFacadeClusterHarness(t *testing.T) {
	c, err := sdscale.BuildCluster(sdscale.ClusterConfig{
		Topology:    sdscale.Hierarchical,
		Stages:      12,
		Aggregators: 2,
		Net:         sdscale.ExperimentNet(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	uc := sdscale.NewUsageCollector(c)
	uc.Start()
	if _, err := c.Global.RunCycle(context.Background()); err != nil {
		t.Fatal(err)
	}
	global, agg, elapsed := uc.Stop()
	if elapsed <= 0 || global.TxMBps <= 0 || agg.TxMBps <= 0 {
		t.Errorf("usage = global %+v agg %+v over %v", global, agg, elapsed)
	}
}

// TestFacadeAlgorithms verifies the algorithm registry and direct use.
func TestFacadeAlgorithms(t *testing.T) {
	alg, err := sdscale.NewAlgorithm("psfa")
	if err != nil {
		t.Fatal(err)
	}
	allocs := alg.Allocate([]sdscale.JobInput{
		{JobID: 1, Weight: 1, Demand: sdscale.Rates{100, 0}},
	}, sdscale.Rates{50, 0})
	if len(allocs) != 1 || allocs[0].Limit[sdscale.ClassData] != 50 {
		t.Errorf("allocs = %+v", allocs)
	}
	if _, err := sdscale.NewAlgorithm("bogus"); err == nil {
		t.Error("bogus algorithm accepted")
	}
}

// TestFacadeWorkloads verifies generator construction via the façade.
func TestFacadeWorkloads(t *testing.T) {
	if sdscale.StressWorkload().Demand(0).IsZero() {
		t.Error("stress workload idle")
	}
	g, err := sdscale.ParseWorkload("constant:10,1")
	if err != nil {
		t.Fatal(err)
	}
	if g.Demand(time.Hour) != (sdscale.Rates{10, 1}) {
		t.Error("parsed workload wrong")
	}
}

// TestFacadeFileSystem verifies PFS construction via the façade.
func TestFacadeFileSystem(t *testing.T) {
	fs := sdscale.NewFileSystem(sdscale.FileSystemConfig{OSTs: 2, OSTCapacity: 1e6, MDSCapacity: 1e6})
	if _, err := fs.Submit(context.Background(), 1, sdscale.ClassData); err != nil {
		t.Fatal(err)
	}
	if fs.Capacity()[sdscale.ClassData] != 2e6 {
		t.Errorf("capacity = %v", fs.Capacity())
	}
}

// ExampleBuildCluster demonstrates the one-call deployment harness.
func ExampleBuildCluster() {
	c, err := sdscale.BuildCluster(sdscale.ClusterConfig{
		Topology:    sdscale.Hierarchical,
		Stages:      100,
		Aggregators: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Global.RunCycle(context.Background()); err != nil {
		log.Fatal(err)
	}
	fmt.Println(c.Global.NumStages(), "stages under", c.Global.NumChildren(), "aggregators")
	// Output: 100 stages under 2 aggregators
}
