// Package wire implements the compact binary message encoding used by the
// sdscale control plane.
//
// The paper's prototype exchanges protobuf messages over gRPC; sdscale uses
// a hand-rolled, stdlib-only codec with equivalent payload shapes: metric
// reports flowing up from data-plane stages and enforcement rules flowing
// down from controllers. Integers are varint encoded, floating point rates
// are fixed 8-byte IEEE 754, and strings/byte slices are length prefixed.
//
// The codec is deliberately allocation-conscious: encoding appends into a
// caller-supplied buffer and decoding reads from a slice without copying,
// because the control plane marshals tens of thousands of messages per
// control cycle at paper scale.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Errors returned by the decoder. They are sentinel values so transports can
// distinguish truncated frames (retry/ignore) from corrupt ones (fatal).
var (
	// ErrShortBuffer indicates the payload ended before the message did.
	ErrShortBuffer = errors.New("wire: short buffer")
	// ErrOverflow indicates a varint did not terminate within 10 bytes.
	ErrOverflow = errors.New("wire: varint overflows 64 bits")
	// ErrTrailingBytes indicates a message decoded cleanly but left unread
	// payload behind, a sign of a version mismatch between peers.
	ErrTrailingBytes = errors.New("wire: trailing bytes after message")
	// ErrBadLength indicates a length prefix exceeding sanity limits.
	ErrBadLength = errors.New("wire: length prefix exceeds limit")
)

// MaxSliceLen bounds every decoded length prefix. A peer announcing a larger
// collection is treated as corrupt rather than allocated for, which keeps a
// malformed frame from OOMing a controller.
const MaxSliceLen = 1 << 24

// Wire codec versions. V1 is the original fixed-width-float encoding; V2
// encodes floats as tagged varints with optional positional history (see
// Encoder.Float64). Frames carry their codec version out of band (the RPC
// layer's frame kind), so the two never need to be distinguished in-band.
const (
	// CodecV1 is the original codec: fixed 8-byte IEEE 754 floats.
	CodecV1 = 1
	// CodecV2 tags each float and varint-encodes the common cases, with
	// optional delta coding against the previous message of the same type.
	CodecV2 = 2
	// MaxCodec is the newest codec version this build speaks.
	MaxCodec = CodecV2
)

// V2 float tags. Order of preference when several apply: f2Same, f2Zero,
// f2Int, f2Delta, f2Raw — the preference is part of the codec (it makes
// encodings deterministic for a given history), not just an optimization.
const (
	// f2Zero encodes exactly 0 (including -0, which canonicalizes to +0).
	f2Zero = 0
	// f2Int encodes an integral value in (0, 2^53] as a uvarint.
	f2Int = 1
	// f2Raw encodes the raw 8-byte IEEE 754 representation.
	f2Raw = 2
	// f2Same repeats the previous same-type message's value at the same
	// position (history-carrying streams only).
	f2Same = 3
	// f2Delta encodes a zig-zag varint integral delta against the previous
	// same-type message's value at the same position (history only).
	f2Delta = 4
)

// maxIntFloat is the largest float64 magnitude whose integral values are all
// exactly representable; beyond it uvarint round-trips would lose precision.
const maxIntFloat = 1 << 53

// FloatHistory carries the per-message-type positional float history that
// powers the v2 codec's f2Same/f2Delta tags. Encoder and decoder each keep
// one per connection direction and MUST observe the same message sequence:
// every encoded history-carrying message must be decoded by the peer, in
// order. The RPC layer guarantees this for responses (single writer per
// connection, single reader draining every frame); requests are encoded
// statelessly precisely because concurrent senders cannot.
//
// A FloatHistory is not safe for concurrent use.
type FloatHistory struct {
	types map[MsgType]*typeHist
}

// typeHist is one message type's history: the float sequence of the previous
// message (prev) and the one being built (cur). At message end the two swap.
type typeHist struct {
	prev, cur []float64
}

// NewFloatHistory returns an empty history.
func NewFloatHistory() *FloatHistory {
	return &FloatHistory{types: make(map[MsgType]*typeHist)}
}

func (h *FloatHistory) get(t MsgType) *typeHist {
	th := h.types[t]
	if th == nil {
		th = &typeHist{}
		h.types[t] = th
	}
	return th
}

func (th *typeHist) swap() {
	th.prev, th.cur = th.cur, th.prev[:0]
}

// Encoder appends primitive values to a byte slice. The zero value is ready
// to use; Bytes returns the accumulated encoding.
type Encoder struct {
	buf []byte
	// ver selects the float encoding: values below CodecV2 use the fixed
	// 8-byte v1 form. Integer encodings are identical across versions.
	ver int
	// hist, when non-nil (v2 only), enables the f2Same/f2Delta tags against
	// the previous message of the same type.
	hist *typeHist
}

// NewEncoder returns an Encoder that appends to buf (which may be nil).
// Passing a buffer with spare capacity lets callers amortize allocations
// across messages.
func NewEncoder(buf []byte) *Encoder { return &Encoder{buf: buf} }

// Bytes returns the encoded bytes accumulated so far. The slice aliases the
// encoder's internal buffer and is invalidated by further Put calls.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of bytes encoded so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Reset discards the accumulated encoding but keeps the capacity.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// Uint64 appends v as an unsigned varint.
func (e *Encoder) Uint64(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }

// Int64 appends v using zig-zag varint encoding.
func (e *Encoder) Int64(v int64) { e.buf = binary.AppendVarint(e.buf, v) }

// Uint32 appends v as an unsigned varint.
func (e *Encoder) Uint32(v uint32) { e.Uint64(uint64(v)) }

// Byte appends a single raw byte.
func (e *Encoder) Byte(b byte) { e.buf = append(e.buf, b) }

// Bool appends a boolean as one byte.
func (e *Encoder) Bool(b bool) {
	if b {
		e.Byte(1)
	} else {
		e.Byte(0)
	}
}

// Float64 appends v in the encoder's codec version. V1 writes the fixed
// 8-byte IEEE 754 representation: observed IOPS are rarely small integers and
// fixed width keeps rule payload sizes predictable. V2 writes a one-byte tag
// and varint-encodes the common cases — zero, small integral values, and
// (when a history is attached) repeats or integral deltas of the previous
// same-type message's value at the same position. Steady-state CollectReply
// streams are dominated by f2Same, cutting float payload from 8 bytes to 1.
func (e *Encoder) Float64(v float64) {
	if e.ver < CodecV2 {
		e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
		return
	}
	var prev float64
	hasPrev := false
	if h := e.hist; h != nil {
		if pos := len(h.cur); pos < len(h.prev) {
			prev, hasPrev = h.prev[pos], true
		}
		h.cur = append(h.cur, v)
	}
	switch {
	case hasPrev && prev == v:
		e.Byte(f2Same)
	case v == 0:
		e.Byte(f2Zero)
	case isIntFloat(v):
		e.Byte(f2Int)
		e.Uint64(uint64(v))
	case hasPrev && deltaFits(prev, v):
		e.Byte(f2Delta)
		e.Int64(int64(v - prev))
	default:
		e.Byte(f2Raw)
		e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
	}
}

// isIntFloat reports whether v is a positive integer that survives a uvarint
// round trip exactly. Zero is excluded (it has its own tag), as are NaN and
// the infinities (Trunc is not an identity on them).
func isIntFloat(v float64) bool {
	return v > 0 && v <= maxIntFloat && v == math.Trunc(v)
}

// deltaFits reports whether v reconstructs exactly as prev plus an integral
// int64 delta, so the encoder may use the f2Delta tag without loss.
func deltaFits(prev, v float64) bool {
	d := v - prev
	if d != math.Trunc(d) || d < -maxIntFloat || d > maxIntFloat {
		return false
	}
	return prev+float64(int64(d)) == v
}

// Bytes16 appends a length-prefixed byte slice.
func (e *Encoder) Bytes16(b []byte) {
	e.Uint64(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// String appends a length-prefixed UTF-8 string.
func (e *Encoder) String(s string) {
	e.Uint64(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Decoder reads primitive values from a byte slice. It never copies the
// underlying data; decoded byte slices alias the input.
type Decoder struct {
	buf []byte
	off int
	err error
	// ver and hist mirror the Encoder's: ver selects the float decoding and
	// hist resolves the v2 f2Same/f2Delta tags. A stateless v2 decoder (hist
	// nil) rejects those tags as corrupt.
	ver  int
	hist *typeHist
}

// NewDecoder returns a Decoder reading from buf.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Err returns the first error encountered while decoding, if any. All Get
// methods become no-ops returning zero values after an error, so callers may
// decode a whole message and check Err once at the end.
func (d *Decoder) Err() error { return d.err }

// Remaining reports how many bytes are left to decode.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Finish verifies the decoder consumed the buffer exactly. It returns the
// decode error if one occurred, ErrTrailingBytes if payload remains, and nil
// otherwise.
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("%w: %d bytes", ErrTrailingBytes, len(d.buf)-d.off)
	}
	return nil
}

func (d *Decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

// Uint64 reads an unsigned varint.
func (d *Decoder) Uint64() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	switch {
	case n > 0:
		d.off += n
		return v
	case n == 0:
		d.fail(ErrShortBuffer)
	default:
		d.fail(ErrOverflow)
	}
	return 0
}

// Int64 reads a zig-zag varint.
func (d *Decoder) Int64() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	switch {
	case n > 0:
		d.off += n
		return v
	case n == 0:
		d.fail(ErrShortBuffer)
	default:
		d.fail(ErrOverflow)
	}
	return 0
}

// Uint32 reads an unsigned varint and reports corruption if it exceeds 32 bits.
func (d *Decoder) Uint32() uint32 {
	v := d.Uint64()
	if v > math.MaxUint32 {
		d.fail(fmt.Errorf("wire: value %d overflows uint32", v))
		return 0
	}
	return uint32(v)
}

// Byte reads a single raw byte.
func (d *Decoder) Byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.buf) {
		d.fail(ErrShortBuffer)
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

// Bool reads a one-byte boolean.
func (d *Decoder) Bool() bool { return d.Byte() != 0 }

// Float64 reads a float in the decoder's codec version (see Encoder.Float64).
func (d *Decoder) Float64() float64 {
	if d.ver >= CodecV2 {
		return d.float64v2()
	}
	return d.float64raw()
}

// float64raw reads 8 little-endian bytes as an IEEE 754 float.
func (d *Decoder) float64raw() float64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.buf) {
		d.fail(ErrShortBuffer)
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return math.Float64frombits(v)
}

// float64v2 reads one tagged v2 float, maintaining positional history when
// the decoder carries one. History references past the previous message's
// float count, or on a history-less stream, are corruption.
func (d *Decoder) float64v2() float64 {
	tag := d.Byte()
	if d.err != nil {
		return 0
	}
	h := d.hist
	var v float64
	switch tag {
	case f2Zero:
	case f2Int:
		v = float64(d.Uint64())
	case f2Raw:
		v = d.float64raw()
	case f2Same, f2Delta:
		if h == nil || len(h.cur) >= len(h.prev) {
			d.fail(fmt.Errorf("wire: float tag %d without matching history", tag))
			return 0
		}
		v = h.prev[len(h.cur)]
		if tag == f2Delta {
			v += float64(d.Int64())
		}
	default:
		d.fail(fmt.Errorf("wire: unknown float tag %d", tag))
		return 0
	}
	if h != nil {
		h.cur = append(h.cur, v)
	}
	return v
}

// Length reads a length prefix and validates it against MaxSliceLen and the
// remaining payload, so callers can pre-allocate safely.
func (d *Decoder) Length() int {
	v := d.Uint64()
	if d.err != nil {
		return 0
	}
	if v > MaxSliceLen {
		d.fail(fmt.Errorf("%w: %d", ErrBadLength, v))
		return 0
	}
	return int(v)
}

// Bytes16 reads a length-prefixed byte slice. The result aliases the input
// buffer; callers that retain it across frames must copy.
func (d *Decoder) Bytes16() []byte {
	n := d.Length()
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.buf) {
		d.fail(ErrShortBuffer)
		return nil
	}
	b := d.buf[d.off : d.off+n : d.off+n]
	d.off += n
	return b
}

// String reads a length-prefixed string.
func (d *Decoder) String() string { return string(d.Bytes16()) }
