// Command benchgate compares `go test -bench` output against a committed
// baseline and fails on allocation regressions.
//
// It reads benchmark output on stdin (run the benchmark with -count=N so
// noise can be filtered), takes the best run per benchmark, and compares
// allocs/op and B/op against the named baseline file (BENCH_cycle.json).
// Allocations and bytes are deterministic enough to gate on in shared CI
// runners; wall time is not, so ns/op regressions only warn.
//
// Usage:
//
//	go test -run '^$' -bench 'BenchmarkFlatCycle/1k' -benchtime=1x -benchmem -count=5 . |
//	  go run ./cmd/benchgate -baseline BENCH_cycle.json
//
// Exit status: 0 when every benchmark found in both the input and the
// baseline is within the threshold, 1 on any allocation regression, 2 on
// usage or parse errors (including an input with no benchmarks).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	baselinePath := flag.String("baseline", "BENCH_cycle.json", "baseline file to compare against")
	threshold := flag.Float64("threshold", 0.15, "allowed fractional allocs/op or B/op regression before failing")
	flag.Parse()

	baseline, err := loadBaseline(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	results, err := parseBench(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no benchmark results on stdin")
		os.Exit(2)
	}
	report, failed := gate(results, baseline, *threshold)
	fmt.Print(report)
	if failed {
		fmt.Print(deltaTable(results, baseline, *threshold, *baselinePath))
		os.Exit(1)
	}
}

// benchResult is the best (lowest-cost) run of one benchmark, taking each
// metric's minimum independently across repetitions.
type benchResult struct {
	name     string // without the Benchmark prefix or -GOMAXPROCS suffix
	nsPerOp  float64
	bytesOp  uint64
	allocsOp uint64
	runs     int
}

// baselineEntry mirrors one element of BENCH_cycle.json's results array.
// BytesOp is zero in baselines recorded before B/op gating existed; the gate
// then skips the bytes comparison for that entry.
type baselineEntry struct {
	Name     string `json:"name"`
	NsPerOp  int64  `json:"ns_per_op"`
	BytesOp  uint64 `json:"bytes_per_op"`
	AllocsOp uint64 `json:"allocs_per_op"`
}

type baselineFile struct {
	Results []baselineEntry `json:"results"`
}

func loadBaseline(path string) (map[string]baselineEntry, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f baselineFile
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	out := make(map[string]baselineEntry, len(f.Results))
	for _, e := range f.Results {
		out[e.Name] = e
	}
	return out, nil
}

// parseBench extracts benchmark lines from `go test -bench` output, keeping
// the minimum allocs/op (and its run's ns/op) per benchmark across -count
// repetitions: the floor is the benchmark's true cost, anything above it is
// scheduler or GC noise.
func parseBench(r io.Reader) (map[string]*benchResult, error) {
	out := make(map[string]*benchResult)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		name, ns, bytes, allocs, ok := parseBenchLine(sc.Text())
		if !ok {
			continue
		}
		cur := out[name]
		if cur == nil {
			out[name] = &benchResult{name: name, nsPerOp: ns, bytesOp: bytes, allocsOp: allocs, runs: 1}
			continue
		}
		cur.runs++
		if allocs < cur.allocsOp {
			cur.allocsOp = allocs
		}
		if bytes < cur.bytesOp {
			cur.bytesOp = bytes
		}
		if ns < cur.nsPerOp {
			cur.nsPerOp = ns
		}
	}
	return out, sc.Err()
}

// parseBenchLine parses one benchmark line, e.g.
//
//	BenchmarkFlatCycle/1k/pipelined-8  1  9475800 ns/op  776564 B/op  20228 allocs/op
func parseBenchLine(line string) (name string, nsPerOp float64, bytesOp, allocsOp uint64, ok bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", 0, 0, 0, false
	}
	name = strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i] // strip the -GOMAXPROCS suffix
		}
	}
	var haveNs, haveBytes, haveAllocs bool
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			v, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return "", 0, 0, 0, false
			}
			nsPerOp, haveNs = v, true
		case "B/op":
			v, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return "", 0, 0, 0, false
			}
			bytesOp, haveBytes = v, true
		case "allocs/op":
			v, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return "", 0, 0, 0, false
			}
			allocsOp, haveAllocs = v, true
		}
	}
	// -benchmem prints B/op and allocs/op together; a line with only one of
	// them is not something this gate understands.
	if !haveNs || !haveBytes || !haveAllocs {
		return "", 0, 0, 0, false
	}
	return name, nsPerOp, bytesOp, allocsOp, true
}

// gate compares results against the baseline. Allocation or bytes growth
// beyond threshold fails; ns/op growth only warns. Benchmarks missing from
// either side are reported but never fail the gate, so adding a benchmark
// does not require touching the baseline in the same change.
func gate(results map[string]*benchResult, baseline map[string]baselineEntry, threshold float64) (report string, failed bool) {
	var b strings.Builder
	names := make([]string, 0, len(results))
	for name := range results {
		names = append(names, name)
	}
	sort.Strings(names)
	compared := 0
	bytesUngated := 0
	for _, name := range names {
		res := results[name]
		base, ok := baseline[name]
		if !ok {
			fmt.Fprintf(&b, "SKIP %-28s no baseline entry\n", name)
			continue
		}
		compared++
		allocDelta := frac(float64(res.allocsOp), float64(base.AllocsOp))
		bytesDelta := frac(float64(res.bytesOp), float64(base.BytesOp))
		nsDelta := frac(res.nsPerOp, float64(base.NsPerOp))
		verdict := "ok  "
		if allocDelta > threshold || (base.BytesOp > 0 && bytesDelta > threshold) {
			verdict = "FAIL"
			failed = true
		}
		fmt.Fprintf(&b, "%s %-28s allocs/op %d vs %d (%+.1f%%)  B/op %d vs %d (%+.1f%%)  limit +%.0f%%  ns/op %.0f vs %d (%+.1f%%)\n",
			verdict, name, res.allocsOp, base.AllocsOp, 100*allocDelta,
			res.bytesOp, base.BytesOp, 100*bytesDelta, 100*threshold,
			res.nsPerOp, base.NsPerOp, 100*nsDelta)
		if base.BytesOp == 0 {
			// A pre-B/op baseline entry leaves bytes ungated; say so per
			// benchmark rather than passing silently with half the gate off.
			bytesUngated++
			fmt.Fprintf(&b, "warn %-28s B/op NOT gated: baseline entry has no bytes_per_op — re-record the baseline to arm it\n", name)
		}
		if verdict == "ok  " && nsDelta > threshold {
			fmt.Fprintf(&b, "warn %-28s ns/op regressed %+.1f%% — timing is advisory on shared runners\n",
				name, 100*nsDelta)
		}
	}
	if compared == 0 {
		b.WriteString("FAIL no benchmark matched a baseline entry\n")
		failed = true
	}
	if bytesUngated > 0 {
		fmt.Fprintf(&b, "warn %d of %d compared benchmark(s) ran with the B/op gate disarmed (baseline predates bytes recording)\n",
			bytesUngated, compared)
	}
	return b.String(), failed
}

// deltaTable renders every compared benchmark as one row per metric —
// baseline vs current with the percentage change and that metric's verdict —
// so a failing run shows the whole picture instead of only the first
// offending line. Printed after the gate report when the gate fails.
func deltaTable(results map[string]*benchResult, baseline map[string]baselineEntry, threshold float64, baselinePath string) string {
	names := make([]string, 0, len(results))
	for name := range results {
		if _, ok := baseline[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	var b strings.Builder
	fmt.Fprintf(&b, "\nper-metric deltas vs %s (gate limit +%.0f%% on allocs/op and B/op; ns/op advisory):\n", baselinePath, 100*threshold)
	fmt.Fprintf(&b, "%-36s %-10s %14s %14s %9s  %s\n", "benchmark", "metric", "baseline", "current", "delta", "verdict")
	row := func(name, metric string, base, cur float64, gated bool) {
		delta := frac(cur, base)
		verdict := "ok"
		switch {
		case !gated && base == 0:
			verdict = "not gated (no baseline)"
		case !gated:
			verdict = "advisory"
			if delta > threshold {
				verdict = "advisory — regressed"
			}
		case delta > threshold:
			verdict = "FAIL"
		}
		fmt.Fprintf(&b, "%-36s %-10s %14.0f %14.0f %+8.1f%%  %s\n", name, metric, base, cur, 100*delta, verdict)
	}
	for _, name := range names {
		res, base := results[name], baseline[name]
		row(name, "allocs/op", float64(base.AllocsOp), float64(res.allocsOp), true)
		row("", "B/op", float64(base.BytesOp), float64(res.bytesOp), base.BytesOp > 0)
		row("", "ns/op", float64(base.NsPerOp), res.nsPerOp, false)
	}
	return b.String()
}

func frac(got, base float64) float64 {
	if base == 0 {
		return 0
	}
	return got/base - 1
}
