package rpc

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
	"time"

	"github.com/dsrhaslab/sdscale/internal/transport"
	"github.com/dsrhaslab/sdscale/internal/wire"
)

// ErrDisconnected is returned by ReconnectingClient.Call while the wrapper
// has no live connection (a redial is in progress in the background).
var ErrDisconnected = errors.New("rpc: disconnected, redial in progress")

// ReconnectPolicy shapes the redial backoff of a ReconnectingClient.
// The zero value selects the defaults documented per field.
type ReconnectPolicy struct {
	// BaseDelay is the wait before the first redial attempt (default 20ms).
	BaseDelay time.Duration
	// MaxDelay caps the exponential backoff (default 2s).
	MaxDelay time.Duration
	// Multiplier grows the delay after each failed attempt (default 2).
	Multiplier float64
	// Jitter is the fraction of the delay randomized symmetrically around
	// it, de-synchronizing redial storms after a shared fault (default 0.5,
	// meaning delay is drawn from [0.5d, 1.5d)). Set negative for none.
	Jitter float64
	// DialTimeout bounds each individual redial attempt (default 5s).
	DialTimeout time.Duration
}

func (p ReconnectPolicy) withDefaults() ReconnectPolicy {
	if p.BaseDelay <= 0 {
		p.BaseDelay = 20 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.MaxDelay < p.BaseDelay {
		p.MaxDelay = p.BaseDelay
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	if p.Jitter == 0 {
		p.Jitter = 0.5
	}
	if p.DialTimeout <= 0 {
		p.DialTimeout = 5 * time.Second
	}
	return p
}

// next returns the jittered form of delay and the grown delay for the
// following attempt. Jitter is drawn from rng, the calling reconnector's own
// source: the global math/rand source hides a mutex every caller shares, and
// with thousands of children redialing after a failover that one lock would
// serialize the very retry storm the jitter exists to spread out.
func (p ReconnectPolicy) next(rng *rand.Rand, delay time.Duration) (wait, grown time.Duration) {
	wait = delay
	if p.Jitter > 0 {
		span := float64(delay) * p.Jitter
		wait = delay + time.Duration((rng.Float64()*2-1)*span)
		if wait < time.Millisecond {
			wait = time.Millisecond
		}
	}
	grown = time.Duration(float64(delay) * p.Multiplier)
	if grown > p.MaxDelay {
		grown = p.MaxDelay
	}
	return wait, grown
}

// ReconnectingClient wraps a Client with automatic redial. When the
// underlying connection dies, a background loop redials through the
// transport with exponential backoff and jitter. Nothing is replayed:
// calls in flight when the connection drops fail fast, calls issued while
// disconnected fail immediately with ErrDisconnected, and new calls use
// the fresh connection once the redial succeeds.
type ReconnectingClient struct {
	network transport.Network
	addr    string
	opts    DialOptions
	policy  ReconnectPolicy
	// rng is this reconnector's private jitter source; only the redial loop
	// draws from it, and at most one redial loop runs at a time.
	rng *rand.Rand

	mu         sync.Mutex
	cur        *Client
	lastErr    error // why cur is nil
	redialing  bool
	closed     bool
	reconnects uint64

	done chan struct{}
}

// DialReconnecting connects to addr and returns a client that transparently
// redials (under policy) whenever the connection later dies. The initial
// dial is synchronous: if it fails, no client is returned.
func DialReconnecting(ctx context.Context, network transport.Network, addr string, opts DialOptions, policy ReconnectPolicy) (*ReconnectingClient, error) {
	cli, err := Dial(ctx, network, addr, opts)
	if err != nil {
		return nil, err
	}
	// Seed the private jitter source from the address so simultaneous
	// reconnectors start decorrelated even when their clocks agree.
	seed := time.Now().UnixNano()
	h := fnv.New64a()
	_, _ = h.Write([]byte(addr))
	seed ^= int64(h.Sum64())
	return &ReconnectingClient{
		network: network,
		addr:    addr,
		opts:    opts,
		policy:  policy.withDefaults(),
		rng:     rand.New(rand.NewSource(seed)),
		cur:     cli,
		done:    make(chan struct{}),
	}, nil
}

// Addr returns the remote address the client (re)dials.
func (r *ReconnectingClient) Addr() string { return r.addr }

// Connected reports whether a live connection is currently attached.
func (r *ReconnectingClient) Connected() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cur != nil
}

// Reconnects returns how many times the client has re-established the
// connection since creation.
func (r *ReconnectingClient) Reconnects() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.reconnects
}

// Call issues req on the current connection. While disconnected it fails
// fast with ErrDisconnected (wrapping the cause) rather than blocking on
// the redial.
func (r *ReconnectingClient) Call(ctx context.Context, req wire.Message) (wire.Message, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrClientClosed
	}
	cli := r.cur
	cause := r.lastErr
	r.mu.Unlock()

	if cli == nil {
		if cause != nil {
			return nil, fmt.Errorf("%w (%v)", ErrDisconnected, cause)
		}
		return nil, ErrDisconnected
	}
	resp, err := cli.Call(ctx, req)
	if err != nil && ctx.Err() == nil {
		// Not the caller's own cancellation: check whether the connection
		// itself is dead and, if so, start the background redial.
		if cerr := cli.Err(); cerr != nil {
			r.markDead(cli, cerr)
		}
	}
	return resp, err
}

// Go issues req asynchronously on the current connection and returns its
// completion handle (see Client.Go). While disconnected the handle completes
// immediately with ErrDisconnected. Because the outcome surfaces at
// Call.Wait rather than here, the wrapper cannot observe connection death by
// itself: harvesters must report failed calls back via NoteError so the
// background redial starts.
func (r *ReconnectingClient) Go(ctx context.Context, req wire.Message) *Call {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return failedCall(ErrClientClosed)
	}
	cli := r.cur
	cause := r.lastErr
	r.mu.Unlock()

	if cli == nil {
		if cause != nil {
			return failedCall(fmt.Errorf("%w (%v)", ErrDisconnected, cause))
		}
		return failedCall(ErrDisconnected)
	}
	return cli.Go(ctx, req)
}

// GoShared issues the broadcast frame f asynchronously on the current
// connection (see Client.GoShared), with Go's disconnection semantics: while
// disconnected the handle completes immediately with ErrDisconnected and no
// reference on f is taken.
func (r *ReconnectingClient) GoShared(ctx context.Context, f *SharedFrame) *Call {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return failedCall(ErrClientClosed)
	}
	cli := r.cur
	cause := r.lastErr
	r.mu.Unlock()

	if cli == nil {
		if cause != nil {
			return failedCall(fmt.Errorf("%w (%v)", ErrDisconnected, cause))
		}
		return failedCall(ErrDisconnected)
	}
	return cli.GoShared(ctx, f)
}

// CodecVersion returns the negotiated request codec of the current
// connection, or wire.CodecV1 while disconnected (a fresh connection always
// starts at v1 until its hello reply arrives).
func (r *ReconnectingClient) CodecVersion() int {
	r.mu.Lock()
	cli := r.cur
	r.mu.Unlock()
	if cli == nil {
		return wire.CodecV1
	}
	return cli.CodecVersion()
}

// NoteError is the harvest-side counterpart of Go: given the error of a
// completed asynchronous call, it checks whether the underlying connection
// died and, if so, detaches it and starts the background redial — exactly
// what Call does inline for synchronous calls. Errors caused by the caller's
// own context are ignored.
func (r *ReconnectingClient) NoteError(ctx context.Context, err error) {
	if err == nil || ctx.Err() != nil {
		return
	}
	r.mu.Lock()
	cli := r.cur
	r.mu.Unlock()
	if cli == nil {
		return // already detached; redial in progress
	}
	if cerr := cli.Err(); cerr != nil {
		r.markDead(cli, cerr)
	}
}

// markDead detaches old (if still current) and kicks the redial loop.
func (r *ReconnectingClient) markDead(old *Client, cause error) {
	r.mu.Lock()
	if r.closed || r.cur != old {
		r.mu.Unlock()
		return
	}
	r.cur = nil
	r.lastErr = cause
	start := !r.redialing
	r.redialing = true
	r.mu.Unlock()
	old.Close()
	if start {
		go r.redialLoop()
	}
}

// redialLoop re-establishes the connection with exponential backoff and
// jitter, stopping on Close.
func (r *ReconnectingClient) redialLoop() {
	delay := r.policy.BaseDelay
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	for {
		dctx, cancel := context.WithTimeout(context.Background(), r.policy.DialTimeout)
		cli, err := Dial(dctx, r.network, r.addr, r.opts)
		cancel()
		if err == nil {
			r.mu.Lock()
			if r.closed {
				r.mu.Unlock()
				cli.Close()
				return
			}
			r.cur = cli
			r.lastErr = nil
			r.redialing = false
			r.reconnects++
			r.mu.Unlock()
			return
		}
		r.mu.Lock()
		r.lastErr = err
		closed := r.closed
		r.mu.Unlock()
		if closed {
			return
		}
		var wait time.Duration
		wait, delay = r.policy.next(r.rng, delay)
		timer.Reset(wait)
		select {
		case <-timer.C:
		case <-r.done:
			return
		}
	}
}

// Close tears down the current connection (failing pending calls) and stops
// any background redial.
func (r *ReconnectingClient) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	cli := r.cur
	r.cur = nil
	r.mu.Unlock()
	close(r.done)
	if cli != nil {
		return cli.Close()
	}
	return nil
}
