package controller

import (
	"context"
	"time"

	"github.com/dsrhaslab/sdscale/internal/cyclemem"
	"github.com/dsrhaslab/sdscale/internal/rpc"
	"github.com/dsrhaslab/sdscale/internal/telemetry"
	"github.com/dsrhaslab/sdscale/internal/wire"
)

// FanOutMode selects how a controller's collect and enforce phases dispatch
// child requests.
type FanOutMode int

const (
	// FanOutPipelined streams every child request back-to-back over the
	// per-child connections and harvests responses as they arrive. No
	// goroutine parks per call and per-call state comes from pools, so
	// dispatch cost per child is a frame encode plus a write. This is the
	// default.
	FanOutPipelined FanOutMode = iota
	// FanOutBlocking reproduces the paper prototype's bounded thread pool:
	// one blocked goroutine per in-flight call, at most FanOut of them. The
	// paper-reproduction presets select it explicitly, since the bounded
	// pool is what makes per-child latency accumulate linearly (Fig. 4).
	FanOutBlocking
)

// String names the mode for logs and experiment reports.
func (m FanOutMode) String() string {
	if m == FanOutBlocking {
		return "blocking"
	}
	return "pipelined"
}

// fanOutOpts carries one phase's dispatch parameters.
type fanOutOpts struct {
	mode FanOutMode
	// par bounds concurrency in blocking mode (ignored when pipelined).
	par int
	// timeout is the per-call budget; in pipelined mode it becomes the
	// phase deadline, so every child still gets at least timeout from its
	// request being issued.
	timeout time.Duration
	// gauge, if non-nil, tracks in-flight calls for this phase.
	gauge *telemetry.Gauge
	// arena and calls, when both set, draw the pipelined harvest's call-
	// handle slots from the controller's cycle arena instead of allocating
	// per phase. The slots are dead once the harvest loop finishes, which
	// is before the cycle ends — exactly the arena's lifetime contract.
	arena *cyclemem.Arena
	calls *cyclemem.Slab[*rpc.Call]
}

// takeCalls returns n nil call slots, arena-backed when configured.
func (o *fanOutOpts) takeCalls(n int) []*rpc.Call {
	if o.arena != nil && o.calls != nil {
		return o.calls.Take(o.arena, n)
	}
	return make([]*rpc.Call, n)
}

// fanOutCalls issues one request per child and hands every outcome to
// onDone. reqFor returning nil skips that child. In blocking mode onDone
// runs concurrently from up to par scatter workers; in pipelined mode it
// runs sequentially on the calling goroutine, in issue order. Callers must
// keep onDone safe for the blocking case (index-disjoint writes or their own
// locking). Once ctx is cancelled no further requests are issued.
func fanOutCalls(ctx context.Context, o fanOutOpts, children []*child,
	reqFor func(i int) wire.Message,
	onDone func(i int, resp wire.Message, err error)) {
	n := len(children)
	if n == 0 {
		return
	}
	if o.mode == FanOutBlocking {
		rpc.Scatter(ctx, n, o.par, func(i int) {
			req := reqFor(i)
			if req == nil {
				return
			}
			if o.gauge != nil {
				o.gauge.Enter()
				defer o.gauge.Exit()
			}
			cctx, cancel := context.WithTimeout(ctx, o.timeout)
			resp, err := children[i].client().Call(cctx, req)
			cancel()
			onDone(i, resp, err)
		})
		return
	}

	// Pipelined: issue every request back-to-back, then harvest the
	// completion handles in issue order — phase latency is the slowest
	// child, not the sum over a bounded pool. One deadline covers the whole
	// phase in place of a context per call.
	pctx, cancel := context.WithTimeout(ctx, o.timeout)
	defer cancel()
	calls := o.takeCalls(n)
	for i := range children {
		if ctx.Err() != nil {
			break // cancelled mid-fan-out: stop issuing
		}
		req := reqFor(i)
		if req == nil {
			continue
		}
		if o.gauge != nil {
			o.gauge.Enter()
		}
		calls[i] = children[i].client().Go(pctx, req)
	}
	for i, call := range calls {
		if call == nil {
			continue
		}
		resp, err := call.Wait(pctx)
		if o.gauge != nil {
			o.gauge.Exit()
		}
		onDone(i, resp, err)
	}
}

// fanOutShared is fanOutCalls for broadcasts: every child receives the same
// request, so the body is marshaled once into a SharedFrame and each call
// writes just a header plus a memcopy. The producer reference on f is
// released before harvesting, so after the last outcome is handed to onDone
// the frame's pooled buffers are back in the pool. onDone follows the same
// concurrency contract as fanOutCalls. skip, if non-nil, exempts children
// from the broadcast.
func fanOutShared(ctx context.Context, o fanOutOpts, children []*child,
	f *rpc.SharedFrame, skip func(i int) bool,
	onDone func(i int, resp wire.Message, err error)) {
	n := len(children)
	if n == 0 {
		f.Release()
		return
	}
	if o.mode == FanOutBlocking {
		rpc.Scatter(ctx, n, o.par, func(i int) {
			if skip != nil && skip(i) {
				return
			}
			if o.gauge != nil {
				o.gauge.Enter()
				defer o.gauge.Exit()
			}
			cctx, cancel := context.WithTimeout(ctx, o.timeout)
			resp, err := children[i].client().GoShared(cctx, f).Wait(cctx)
			cancel()
			onDone(i, resp, err)
		})
		f.Release()
		return
	}

	pctx, cancel := context.WithTimeout(ctx, o.timeout)
	defer cancel()
	calls := o.takeCalls(n)
	for i := range children {
		if ctx.Err() != nil {
			break // cancelled mid-fan-out: stop issuing
		}
		if skip != nil && skip(i) {
			continue
		}
		if o.gauge != nil {
			o.gauge.Enter()
		}
		calls[i] = children[i].client().GoShared(pctx, f)
	}
	f.Release()
	for i, call := range calls {
		if call == nil {
			continue
		}
		resp, err := call.Wait(pctx)
		if o.gauge != nil {
			o.gauge.Exit()
		}
		onDone(i, resp, err)
	}
}
