package experiment

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/dsrhaslab/sdscale/internal/cluster"
	"github.com/dsrhaslab/sdscale/internal/controller"
	"github.com/dsrhaslab/sdscale/internal/rpc"
	"github.com/dsrhaslab/sdscale/internal/telemetry"
	"github.com/dsrhaslab/sdscale/internal/transport/simnet"
	"github.com/dsrhaslab/sdscale/internal/wire"
)

// FailoverNodes is the flat deployment size the failover scenario runs at.
// The paper's flat design centralizes all control state in one process
// (§IV-A); this scenario measures what that costs when the process dies.
const FailoverNodes = 1000

// failover scenario timing. Detection is tuned fast so the whole scenario
// fits in seconds: the primary syncs state (and renews its lease) every
// 25ms, and the standby declares it dead after 150ms of silence — the same
// multiple of the sync interval the controller defaults use.
const (
	failoverCyclePeriod   = 100 * time.Millisecond
	failoverSyncInterval  = 25 * time.Millisecond
	failoverLeaseTimeout  = 150 * time.Millisecond
	failoverParentTimeout = 300 * time.Millisecond
	failoverCallTimeout   = 250 * time.Millisecond
	failoverMaxFailures   = 2
	failoverProbeInterval = 25 * time.Millisecond
	// failoverRecoverCycles is the acceptance bound: control cycles must
	// resume within this many control intervals of the crash.
	failoverRecoverCycles = 5
	// Hard wall-clock budgets for the scenario's wait loops; generous so a
	// loaded CI runner times out the experiment rather than deadlocking it.
	failoverSettleBudget  = 10 * time.Second
	failoverRecoverBudget = 10 * time.Second
	failoverDeposeBudget  = 10 * time.Second
)

// FailoverResult reports the controller-failover scenario's outcome.
type FailoverResult struct {
	// Nodes is the stage count.
	Nodes int
	// OldEpoch and NewEpoch are the leadership epochs before the crash and
	// after the standby's promotion.
	OldEpoch, NewEpoch uint64
	// RecoveryGap is the wall-clock time from the primary's crash to the
	// standby's first completed control cycle; CyclesToRecover is the same
	// gap in control intervals (rounded up).
	RecoveryGap     time.Duration
	CyclesToRecover int
	// RecoveredCycles is how many cycles the promoted standby completed.
	RecoveredCycles uint64
	// ReHomed is how many children the promoted standby ended up owning
	// (must equal Nodes: no orphans).
	ReHomed int
	// EpochsAdopted is how many stages ended the run fencing at the new
	// leadership epoch.
	EpochsAdopted int
	// StageReRegistrations sums stage-initiated re-homes (orphaned stages
	// that re-registered on their own after upstream silence).
	StageReRegistrations uint64
	// FencedAtStages sums stale-epoch rejections issued by stages.
	FencedAtStages uint64
	// FencedSyncs counts StateSyncs from the deposed primary that the
	// promoted standby rejected.
	FencedSyncs uint64
	// StaleProbeRejected and StaleProbeIgnored report the explicit fencing
	// probe: an Enforce replayed with the dead primary's epoch must be
	// rejected with the current epoch and must not change the stage's rule.
	StaleProbeRejected, StaleProbeIgnored bool
	// PrimaryDeposed reports whether the healed zombie primary observed its
	// fencing and stepped down (its Run returned ErrDeposed).
	PrimaryDeposed bool
	// Primary and Standby are the two controllers' fault telemetry.
	Primary, Standby telemetry.FaultSummary
}

// Failover runs the controller-crash scenario: a flat deployment with a
// warm standby, control cycles paced at a fixed period, and the primary's
// host crashed mid-run. It measures how long the control plane goes dark
// (lease expiry, standby promotion, membership adoption, first cycle),
// verifies every orphaned stage is re-homed, and proves epoch fencing: the
// deposed primary's messages are rejected everywhere, forcing it to step
// down once it reconnects.
func Failover(ctx context.Context, o Options) (FailoverResult, error) {
	o = o.withDefaults()
	nodes := o.scaled(FailoverNodes)

	c, err := cluster.Build(cluster.Config{
		Topology:      cluster.Flat,
		Stages:        nodes,
		Jobs:          o.Jobs,
		Net:           *o.Net,
		CallTimeout:   failoverCallTimeout,
		MaxFailures:   failoverMaxFailures,
		ProbeInterval: failoverProbeInterval,
		Standby:       true,
		LeaseTimeout:  failoverLeaseTimeout,
		SyncInterval:  failoverSyncInterval,
		ParentTimeout: failoverParentTimeout,
	})
	if err != nil {
		return FailoverResult{}, fmt.Errorf("experiment failover: %w", err)
	}
	defer c.Close()
	g, sb := c.Global, c.Standby

	r := FailoverResult{Nodes: nodes, OldEpoch: g.Epoch()}

	// Warm up the primary (its sync loop replicates to the standby in the
	// background from the moment it was built).
	for i := 0; i < o.Warmup; i++ {
		if _, err := g.RunCycle(ctx); err != nil {
			return r, fmt.Errorf("experiment failover: warmup: %w", err)
		}
	}
	g.Recorder().Reset()

	// Run both controllers the way a real deployment would: the primary
	// paces cycles, the standby waits on its lease.
	runCtx, stopRun := context.WithCancel(ctx)
	defer stopRun()
	primaryDone := make(chan error, 1)
	go func() { primaryDone <- g.Run(runCtx, failoverCyclePeriod) }()
	standbyDone := make(chan error, 1)
	go func() { standbyDone <- sb.Run(runCtx, failoverCyclePeriod) }()

	// A couple of paced steady-state cycles before pulling the plug.
	if err := waitCycles(ctx, g.Recorder(), 2, failoverSettleBudget); err != nil {
		return r, fmt.Errorf("experiment failover: settle: %w", err)
	}

	// Crash the primary's host: connections die and dials fail, and —
	// unlike a partition — test teardown does not resurrect it.
	c.Net.Schedule([]simnet.FaultEvent{{Host: "global", Action: simnet.FaultCrash}}).Wait()
	crashAt := time.Now()

	// Recovery: the standby's lease must expire, it must promote, adopt the
	// mirrored fleet, and complete a control cycle.
	if err := waitCycles(ctx, sb.Recorder(), 1, failoverRecoverBudget); err != nil {
		return r, fmt.Errorf("experiment failover: standby never resumed cycles: %w", err)
	}
	r.RecoveryGap = time.Since(crashAt)
	r.CyclesToRecover = int((r.RecoveryGap + failoverCyclePeriod - 1) / failoverCyclePeriod)
	r.NewEpoch = sb.Epoch()

	// Re-homing: every stage the dead primary owned must end up owned by
	// the new primary (adoption from the mirror, or self re-registration —
	// whichever wins; duplicate registrations are reconnects, not errors).
	deadline := time.Now().Add(failoverRecoverBudget)
	for sb.NumChildren() < nodes && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	r.ReHomed = sb.NumChildren()

	// Fencing probe: replay an Enforce stamped with the dead primary's
	// epoch straight at a stage. It must be rejected with a stale-epoch
	// error naming the new epoch, and must not change the stage's rule.
	v := c.Stages[0]
	probeRule := wire.Rule{
		StageID: v.Info().ID,
		JobID:   v.Info().JobID,
		Action:  wire.ActionSetLimit,
		Limit:   wire.Rates{12345, 12345},
	}
	cli, err := rpc.Dial(ctx, c.Net.Host("failover-prober"), v.Info().Addr, rpc.DialOptions{})
	if err != nil {
		return r, fmt.Errorf("experiment failover: probe dial: %w", err)
	}
	_, callErr := cli.Call(ctx, &wire.Enforce{Cycle: 1 << 40, Rules: []wire.Rule{probeRule}, Epoch: r.OldEpoch})
	cli.Close()
	if cur, ok := rpc.StaleEpochError(callErr); ok && cur == r.NewEpoch {
		r.StaleProbeRejected = true
	}
	if rule, ok := v.LastRule(); !ok || rule.Limit != probeRule.Limit {
		r.StaleProbeIgnored = true
	}

	// Heal the crashed host, modeling the old primary's process coming back
	// as a zombie that still believes it leads. Its first contact with the
	// fleet — a rejected state sync or a fenced child call — must make it
	// step down, so its Run exits with ErrDeposed.
	c.Net.Host("global").SetPartitioned(false)
	select {
	case err := <-primaryDone:
		r.PrimaryDeposed = errors.Is(err, controller.ErrDeposed)
		if !r.PrimaryDeposed {
			return r, fmt.Errorf("experiment failover: primary exited with %v, want ErrDeposed", err)
		}
	case <-time.After(failoverDeposeBudget):
		return r, fmt.Errorf("experiment failover: healed zombie primary was never deposed")
	case <-ctx.Done():
		return r, ctx.Err()
	}

	stopRun()
	<-standbyDone

	for _, v := range c.Stages {
		r.FencedAtStages += v.FencedCalls()
		r.StageReRegistrations += v.ReRegistrations()
		if v.Epoch() == r.NewEpoch {
			r.EpochsAdopted++
		}
	}
	r.RecoveredCycles = sb.Recorder().Cycles()
	r.FencedSyncs = sb.FencedSyncs()
	r.Primary = g.Faults().Summarize()
	r.Standby = sb.Faults().Summarize()
	return r, nil
}

// waitCycles polls the recorder until it has seen at least want cycles.
func waitCycles(ctx context.Context, rec *telemetry.CycleRecorder, want uint64, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	for rec.Cycles() < want {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("timed out waiting for %d cycles (have %d)", want, rec.Cycles())
		}
		time.Sleep(2 * time.Millisecond)
	}
	return nil
}

// PrintFailover renders the scenario's outcome.
func PrintFailover(o Options, r FailoverResult) {
	o = o.withDefaults()
	o.printf("failover — flat control plane with warm standby, %d nodes, primary crashed mid-run\n", r.Nodes)
	o.printf("  leadership epoch        %d -> %d\n", r.OldEpoch, r.NewEpoch)
	o.printf("  control gap             %v (%d control intervals of %v)\n",
		r.RecoveryGap.Round(time.Millisecond), r.CyclesToRecover, failoverCyclePeriod)
	o.printf("  re-homed                %d/%d children (%d at new epoch, %d stage-initiated re-homes)\n",
		r.ReHomed, r.Nodes, r.EpochsAdopted, r.StageReRegistrations)
	o.printf("  recovered cycles        %d completed by the promoted standby\n", r.RecoveredCycles)
	o.printf("  fencing                 %d stale calls rejected at stages, %d stale syncs rejected at standby\n",
		r.FencedAtStages, r.FencedSyncs)
	o.printf("  stale-enforce probe     rejected=%v rule-unchanged=%v\n", r.StaleProbeRejected, r.StaleProbeIgnored)
	o.printf("  zombie primary          deposed=%v (step_downs=%d)\n", r.PrimaryDeposed, r.Primary.StepDowns)
	o.printf("  standby faults          %v\n\n", r.Standby)
}

// CheckFailover asserts the scenario's dependability claims: exactly one
// promotion with a bumped epoch, cycles resuming within the recovery budget,
// every orphaned child re-homed, zero stale-epoch messages accepted
// anywhere, and the zombie primary fenced into stepping down.
func CheckFailover(r FailoverResult) error {
	if r.Standby.Promotions != 1 {
		return fmt.Errorf("failover: %d promotions, want exactly 1", r.Standby.Promotions)
	}
	if r.NewEpoch <= r.OldEpoch {
		return fmt.Errorf("failover: promoted epoch %d does not supersede %d", r.NewEpoch, r.OldEpoch)
	}
	if r.CyclesToRecover > failoverRecoverCycles {
		return fmt.Errorf("failover: cycles resumed after %d control intervals (%v), want <= %d",
			r.CyclesToRecover, r.RecoveryGap, failoverRecoverCycles)
	}
	if r.ReHomed != r.Nodes {
		return fmt.Errorf("failover: only %d/%d children re-homed to the new primary", r.ReHomed, r.Nodes)
	}
	if r.EpochsAdopted != r.Nodes {
		return fmt.Errorf("failover: only %d/%d stages fence at the new epoch", r.EpochsAdopted, r.Nodes)
	}
	if r.FencedAtStages == 0 {
		return fmt.Errorf("failover: no stage ever rejected a stale-epoch call")
	}
	if !r.StaleProbeRejected {
		return fmt.Errorf("failover: stale-epoch Enforce probe was not rejected with the new epoch")
	}
	if !r.StaleProbeIgnored {
		return fmt.Errorf("failover: stale-epoch Enforce probe changed a stage's rule")
	}
	if !r.PrimaryDeposed {
		return fmt.Errorf("failover: zombie primary was never deposed")
	}
	if r.Primary.StepDowns != 1 {
		return fmt.Errorf("failover: primary recorded %d step-downs, want exactly 1", r.Primary.StepDowns)
	}
	if r.Standby.MaxControlGap <= 0 {
		return fmt.Errorf("failover: promoted standby recorded no control gap")
	}
	return nil
}
