package sdscale_test

import (
	"context"
	"fmt"
	"math"
	"testing"
	"time"

	"github.com/dsrhaslab/sdscale"
	"github.com/dsrhaslab/sdscale/internal/controlalg"
	"github.com/dsrhaslab/sdscale/internal/controller"
	"github.com/dsrhaslab/sdscale/internal/stage"
	"github.com/dsrhaslab/sdscale/internal/wire"
	"github.com/dsrhaslab/sdscale/internal/workload"
)

// TestTCPFlatControlPlane runs the whole stack over real TCP loopback:
// stages register dynamically with the controller, cycles run, and rules
// arrive — the multi-host deployment path cmd/sdsctl uses.
func TestTCPFlatControlPlane(t *testing.T) {
	net := sdscale.NewTCPNet()
	ctx := context.Background()

	g, err := sdscale.NewGlobal(sdscale.GlobalConfig{
		Network:    net,
		ListenAddr: "127.0.0.1:0",
		Capacity:   sdscale.Rates{1000, 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	const nStages = 8
	var stages []*sdscale.VirtualStage
	for i := 0; i < nStages; i++ {
		st, err := sdscale.StartVirtualStage(sdscale.StageConfig{
			ID:         uint64(i + 1),
			JobID:      uint64(i%2 + 1),
			Weight:     1,
			Generator:  sdscale.ConstantWorkload{Rates: sdscale.Rates{1000, 100}},
			Network:    net,
			ListenAddr: "127.0.0.1:0",
		})
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		stages = append(stages, st)
		if err := sdscale.RegisterStage(ctx, net, g.Addr(), st.Info()); err != nil {
			t.Fatalf("register stage %d: %v", i, err)
		}
	}
	if g.NumStages() != nStages {
		t.Fatalf("registered stages = %d, want %d", g.NumStages(), nStages)
	}

	b, err := g.RunCycle(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if b.Total <= 0 {
		t.Error("zero cycle latency over TCP")
	}
	for i, st := range stages {
		rule, ok := st.LastRule()
		if !ok {
			t.Fatalf("stage %d got no rule over TCP", i)
		}
		if math.Abs(rule.Limit[sdscale.ClassData]-125) > 1e-6 {
			t.Errorf("stage %d limit = %g, want 125", i, rule.Limit[sdscale.ClassData])
		}
	}
}

// TestTCPHierarchy runs global -> aggregator -> stages over TCP with
// AttachAggregator's stage discovery.
func TestTCPHierarchy(t *testing.T) {
	net := sdscale.NewTCPNet()
	ctx := context.Background()

	agg, err := sdscale.StartAggregator(sdscale.AggregatorConfig{
		ID:         9,
		Network:    net,
		ListenAddr: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()

	var stages []*sdscale.VirtualStage
	for i := 0; i < 4; i++ {
		st, err := sdscale.StartVirtualStage(sdscale.StageConfig{
			ID: uint64(i + 1), JobID: 1, Weight: 1,
			Network:    net,
			ListenAddr: "127.0.0.1:0",
		})
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		stages = append(stages, st)
		if err := sdscale.RegisterStage(ctx, net, agg.Addr(), st.Info()); err != nil {
			t.Fatal(err)
		}
	}

	g, err := sdscale.NewGlobal(sdscale.GlobalConfig{
		Network:  net,
		Capacity: sdscale.Rates{400, 40},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if err := g.AttachAggregator(ctx, agg.ID(), agg.Addr()); err != nil {
		t.Fatalf("AttachAggregator over TCP: %v", err)
	}
	if g.NumStages() != 4 {
		t.Fatalf("discovered stages = %d", g.NumStages())
	}
	if _, err := g.RunCycle(ctx); err != nil {
		t.Fatal(err)
	}
	for i, st := range stages {
		rule, ok := st.LastRule()
		if !ok || math.Abs(rule.Limit[sdscale.ClassData]-100) > 1e-6 {
			t.Errorf("stage %d rule = %+v/%v, want 100 data IOPS", i, rule, ok)
		}
	}
}

// TestTCPCoordinatedPeersAutoMesh runs two coordinated peers over TCP with
// one-sided configuration; auto-meshing must make visibility symmetric.
func TestTCPCoordinatedPeersAutoMesh(t *testing.T) {
	net := sdscale.NewTCPNet()
	ctx := context.Background()

	mkPeer := func(id uint64) *sdscale.PeerController {
		p, err := sdscale.StartPeerController(sdscale.PeerControllerConfig{
			ID:         id,
			Network:    net,
			ListenAddr: "127.0.0.1:0",
			Capacity:   sdscale.Rates{800, 80},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
		return p
	}
	p1 := mkPeer(1)
	p2 := mkPeer(2)
	// One-sided: only p2 knows p1.
	if err := p2.AddPeer(ctx, 1, p1.Addr()); err != nil {
		t.Fatal(err)
	}

	var stages []*sdscale.VirtualStage
	for i := 0; i < 4; i++ {
		st, err := sdscale.StartVirtualStage(sdscale.StageConfig{
			ID: uint64(i + 1), JobID: 1, Weight: 1,
			Generator:  workload.Constant{Rates: wire.Rates{1000, 100}},
			Network:    net,
			ListenAddr: "127.0.0.1:0",
		})
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		stages = append(stages, st)
	}
	parent := []*sdscale.PeerController{p1, p1, p2, p2}
	for i, st := range stages {
		if err := parent[i].AddStage(ctx, st.Info()); err != nil {
			t.Fatal(err)
		}
	}

	// p2's first cycle pushes its aggregates to p1 and triggers p1's
	// auto-mesh dial-back; subsequent cycles give both a global view.
	for round := 0; round < 3; round++ {
		if _, err := p2.RunCycle(ctx); err != nil {
			t.Fatal(err)
		}
		if _, err := p1.RunCycle(ctx); err != nil {
			t.Fatal(err)
		}
	}
	waitForCondition(t, 5*time.Second, func() bool { return p1.NumPeers() == 1 })

	// Global view: 4 stages, capacity 800 -> 200 each, at both partitions.
	p2.RunCycle(ctx)
	p1.RunCycle(ctx)
	for i, st := range stages {
		rule, ok := st.LastRule()
		if !ok {
			t.Fatalf("stage %d unruled", i)
		}
		if math.Abs(rule.Limit[sdscale.ClassData]-200) > 1e-6 {
			t.Errorf("stage %d limit = %g, want 200 (global view)", i, rule.Limit[sdscale.ClassData])
		}
	}
}

// TestEndToEndAllocationInvariants is a cluster-level property test: for
// random job demands and capacities, after two control cycles the enforced
// per-stage limits must be work conserving (sum to capacity) and never
// falsely allocated (stage limit <= stage demand under saturation).
func TestEndToEndAllocationInvariants(t *testing.T) {
	for trial := 0; trial < 5; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial=%d", trial), func(t *testing.T) {
			nStages := 4 + trial*3
			capacity := wire.Rates{float64(1000 + trial*700), float64(100 * (trial + 1))}
			net := sdscale.NewSimNet(sdscale.SimNetConfig{PropDelay: -1})
			ctx := context.Background()

			var stages []*stage.Virtual
			var totalDemand wire.Rates
			for i := 0; i < nStages; i++ {
				demand := wire.Rates{float64(300 + 137*((i*7+trial)%9)), float64(20 + 13*((i*3+trial)%5))}
				totalDemand = totalDemand.Add(demand)
				st, err := stage.StartVirtual(stage.Config{
					ID:        uint64(i + 1),
					JobID:     uint64(i%3 + 1),
					Weight:    float64(i%2 + 1),
					Generator: workload.Constant{Rates: demand},
					Network:   net.Host(fmt.Sprintf("stage-%d", i+1)),
				})
				if err != nil {
					t.Fatal(err)
				}
				defer st.Close()
				stages = append(stages, st)
			}

			g, err := controller.NewGlobal(controller.GlobalConfig{
				Network:   net.Host("global"),
				Algorithm: controlalg.PSFA{},
				Capacity:  capacity,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer g.Close()
			for _, st := range stages {
				if err := g.AddStage(ctx, st.Info()); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 2; i++ {
				if _, err := g.RunCycle(ctx); err != nil {
					t.Fatal(err)
				}
			}

			var totalLimit wire.Rates
			for _, st := range stages {
				rule, ok := st.LastRule()
				if !ok {
					t.Fatal("unruled stage")
				}
				totalLimit = totalLimit.Add(rule.Limit)
			}
			for c := 0; c < int(wire.NumClasses); c++ {
				// Work conservation: full capacity distributed (PSFA
				// always assigns exactly the capacity when demand exists).
				if math.Abs(totalLimit[c]-capacity[c]) > 1e-6*capacity[c] {
					t.Errorf("class %d: limits sum to %g, capacity %g (demand %g)",
						c, totalLimit[c], capacity[c], totalDemand[c])
				}
			}
		})
	}
}

func waitForCondition(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
