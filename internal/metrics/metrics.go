// Package metrics provides the measurement primitives data-plane stages and
// controllers use: sliding-window rate counters, exponentially weighted
// moving averages, and the report-aggregation functions that implement the
// "aggregate metrics" role of aggregator controllers (paper §III-B).
package metrics

import (
	"sort"
	"sync"
	"time"

	"github.com/dsrhaslab/sdscale/internal/wire"
)

// RateCounter measures an event rate over a sliding window using a ring of
// fixed-width buckets. It is safe for concurrent use and allocation-free on
// the Add path, since enforcing stages call it on every intercepted I/O
// operation.
type RateCounter struct {
	mu       sync.Mutex
	buckets  []float64
	width    time.Duration
	lastTick time.Time
	cur      int
}

// NewRateCounter creates a counter with the given window split into n
// buckets. Resolution is window/n; shorter windows react faster, longer
// windows smooth bursts.
func NewRateCounter(window time.Duration, n int) *RateCounter {
	if n <= 0 {
		n = 10
	}
	if window <= 0 {
		window = time.Second
	}
	return &RateCounter{
		buckets:  make([]float64, n),
		width:    window / time.Duration(n),
		lastTick: time.Now(),
	}
}

// advance rotates the ring forward to now, zeroing expired buckets.
// Callers must hold mu.
func (c *RateCounter) advance(now time.Time) {
	elapsed := now.Sub(c.lastTick)
	if elapsed < c.width {
		return
	}
	steps := int(elapsed / c.width)
	if steps >= len(c.buckets) {
		for i := range c.buckets {
			c.buckets[i] = 0
		}
		c.cur = 0
		c.lastTick = now
		return
	}
	for i := 0; i < steps; i++ {
		c.cur = (c.cur + 1) % len(c.buckets)
		c.buckets[c.cur] = 0
	}
	c.lastTick = c.lastTick.Add(time.Duration(steps) * c.width)
}

// Add records n events at time now.
func (c *RateCounter) Add(now time.Time, n float64) {
	c.mu.Lock()
	c.advance(now)
	c.buckets[c.cur] += n
	c.mu.Unlock()
}

// Rate returns the average event rate per second over the window ending at
// now.
func (c *RateCounter) Rate(now time.Time) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.advance(now)
	var total float64
	for _, b := range c.buckets {
		total += b
	}
	window := c.width * time.Duration(len(c.buckets))
	return total / window.Seconds()
}

// Total returns the raw event count currently inside the window.
func (c *RateCounter) Total(now time.Time) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.advance(now)
	var total float64
	for _, b := range c.buckets {
		total += b
	}
	return total
}

// EWMA is an exponentially weighted moving average with a configurable time
// constant. Controllers use it to smooth per-job demand so the PSFA
// algorithm doesn't chase single-cycle noise.
type EWMA struct {
	mu       sync.Mutex
	tau      time.Duration
	value    float64
	lastSeen time.Time
	primed   bool
}

// NewEWMA creates an average with time constant tau: a step change in input
// reaches ~63% of its final value after tau.
func NewEWMA(tau time.Duration) *EWMA {
	if tau <= 0 {
		tau = time.Second
	}
	return &EWMA{tau: tau}
}

// Update folds a new sample observed at now into the average.
func (e *EWMA) Update(now time.Time, sample float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.primed {
		e.value = sample
		e.primed = true
		e.lastSeen = now
		return
	}
	dt := now.Sub(e.lastSeen)
	if dt <= 0 {
		// Same-instant samples average in with a nominal small weight.
		e.value += (sample - e.value) * 0.1
		return
	}
	// alpha = 1 - exp(-dt/tau), approximated by dt/(dt+tau) to stay in
	// (0,1) without importing math for Exp on the hot path.
	alpha := float64(dt) / float64(dt+e.tau)
	e.value += (sample - e.value) * alpha
	e.lastSeen = now
}

// Value returns the current average (zero before the first sample).
func (e *EWMA) Value() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.value
}

// Primed reports whether at least one sample has been folded in.
func (e *EWMA) Primed() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.primed
}

// AggregateByJob sums per-stage reports into per-job aggregates, the
// transformation an aggregator controller applies before replying to the
// global controller. The result is sorted by JobID so payloads are
// deterministic.
func AggregateByJob(reports []wire.StageReport) []wire.JobReport {
	if len(reports) == 0 {
		return nil
	}
	byJob := make(map[uint64]*wire.JobReport)
	for i := range reports {
		r := &reports[i]
		j, ok := byJob[r.JobID]
		if !ok {
			j = &wire.JobReport{JobID: r.JobID}
			byJob[r.JobID] = j
		}
		j.Stages++
		j.Demand = j.Demand.Add(r.Demand)
		j.Usage = j.Usage.Add(r.Usage)
	}
	out := make([]wire.JobReport, 0, len(byJob))
	for _, j := range byJob {
		out = append(out, *j)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].JobID < out[b].JobID })
	return out
}

// MergeJobReports folds per-job aggregates from multiple aggregators into
// one per-job view, the global controller's input to the control algorithm.
func MergeJobReports(groups ...[]wire.JobReport) []wire.JobReport {
	byJob := make(map[uint64]*wire.JobReport)
	for _, g := range groups {
		for i := range g {
			r := &g[i]
			j, ok := byJob[r.JobID]
			if !ok {
				j = &wire.JobReport{JobID: r.JobID}
				byJob[r.JobID] = j
			}
			j.Stages += r.Stages
			j.Demand = j.Demand.Add(r.Demand)
			j.Usage = j.Usage.Add(r.Usage)
		}
	}
	out := make([]wire.JobReport, 0, len(byJob))
	for _, j := range byJob {
		out = append(out, *j)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].JobID < out[b].JobID })
	return out
}

// TotalDemand sums demand across a set of job reports.
func TotalDemand(jobs []wire.JobReport) wire.Rates {
	var t wire.Rates
	for i := range jobs {
		t = t.Add(jobs[i].Demand)
	}
	return t
}

// TotalUsage sums usage across a set of job reports.
func TotalUsage(jobs []wire.JobReport) wire.Rates {
	var t wire.Rates
	for i := range jobs {
		t = t.Add(jobs[i].Usage)
	}
	return t
}
