package sdscale

import (
	"context"
	"fmt"
	"sync"

	"github.com/dsrhaslab/sdscale/internal/cluster"
	"github.com/dsrhaslab/sdscale/internal/shard"
	"github.com/dsrhaslab/sdscale/internal/wire"
)

// Topology is the declarative description of a control-plane deployment:
// how many shards lead the fleet, how each shard survives its leader, and
// how children find their shard. StartTopology consumes it and returns the
// running Deployment.
//
// The zero value is not valid — at minimum Stages must be set; Shards
// zero means one. The per-role Start* constructors (StartGlobal,
// StartAggregator, ...) remain available as the manual-assembly path for
// programs that need to wire roles one by one; everything they build,
// StartTopology builds from this one spec.
type Topology struct {
	// Stages is the fleet size: one virtual stage per simulated compute
	// node, exactly as the paper's experiments assume. Required.
	Stages int
	// Jobs spreads the stages over this many distinct jobs. Zero selects
	// the harness default (16).
	Jobs int

	// Shards is the number of concurrently active global controllers the
	// fleet is partitioned across. Zero or one deploys the classic single
	// global controller; higher values bound each controller's child count
	// and blast radius, with a routing tier fanning cross-shard operations
	// out to every leader.
	Shards int
	// Standbys gives every shard this many warm standbys: the leader
	// replicates state to them, and lease expiry triggers promotion (one
	// standby) or a majority election (two). At most two — see Validate.
	Standbys int
	// AggregatorFanIn, when positive, deploys the paper's hierarchical
	// design instead: one aggregator tier between the global controller
	// and the stages, each aggregator owning at most AggregatorFanIn
	// stages. Incompatible with Shards > 1.
	AggregatorFanIn int

	// Placement overrides the consistent-hash child placement (Shards > 1
	// only): it must map every stage ID in [1, Stages] to a shard in
	// [0, Shards). Incompatible with Standbys — see Validate. Nil selects
	// the default ring.
	Placement func(childID uint64) int
	// VirtualNodes tunes the default placement ring's granularity; zero
	// selects the package default.
	VirtualNodes int

	// DataDir, when set, gives every controller a durable write-ahead
	// store under it, enabling cold-restart recovery.
	DataDir string
	// Workload generates per-stage demand. Nil selects the paper's stress
	// workload.
	Workload Generator
	// Capacity is the administrator-configured PFS operation-rate maximum,
	// divided among the shards in proportion to their child counts. Zero
	// selects the harness default.
	Capacity Rates
	// Incremental switches the deployment to the event-driven incremental
	// cycle (stage push deltas, dirty-child tracking).
	Incremental bool
	// Net parameterizes the simulated network the deployment runs on.
	Net SimNetConfig
}

// Validate checks the spec without building anything. StartTopology calls
// it after normalizing Shards zero to one; calling it directly requires
// Shards >= 1.
func (t Topology) Validate() error {
	if t.Stages < 1 {
		return fmt.Errorf("sdscale: topology needs at least one stage, got %d", t.Stages)
	}
	if t.Shards < 1 {
		return fmt.Errorf("sdscale: topology needs at least one shard, got %d", t.Shards)
	}
	if t.Standbys < 0 {
		return fmt.Errorf("sdscale: negative standby count %d", t.Standbys)
	}
	// Each shard's voter set is its leader plus the standbys, and a
	// promotion needs a strict majority of the voters. Standbys must stay
	// below that majority threshold (voters/2 + 1, in real arithmetic):
	// past it, adding standbys only enlarges the electorate a candidate
	// must win without adding a leader that could ever serve, so the spec
	// caps standbys rather than let availability silently degrade. The
	// bound works out to at most two standbys per shard.
	if voters := t.Standbys + 1; 2*t.Standbys >= voters+2 {
		return fmt.Errorf("sdscale: %d standbys exceed the %d-voter quorum threshold; at most 2 standbys per shard are supported",
			t.Standbys, voters)
	}
	if t.AggregatorFanIn < 0 {
		return fmt.Errorf("sdscale: negative aggregator fan-in %d", t.AggregatorFanIn)
	}
	if t.AggregatorFanIn > 0 && t.Shards > 1 {
		return fmt.Errorf("sdscale: aggregator tiers and sharding are exclusive (fan-in %d, shards %d)", t.AggregatorFanIn, t.Shards)
	}
	if t.Placement != nil {
		if t.Shards < 2 {
			return fmt.Errorf("sdscale: custom placement requires Shards > 1")
		}
		if t.Standbys > 0 {
			return fmt.Errorf("sdscale: custom placement is incompatible with Standbys; use the default consistent-hash placement")
		}
		// Placement total must equal the fleet: every stage ID lands on
		// exactly one in-range shard, so the shards' populations sum to
		// Stages and no child is orphaned or double-owned.
		for id := uint64(1); id <= uint64(t.Stages); id++ {
			if s := t.Placement(id); s < 0 || s >= t.Shards {
				return fmt.Errorf("sdscale: placement sends stage %d to shard %d (have %d shards)", id, s, t.Shards)
			}
		}
	}
	return nil
}

// clusterConfig lowers the spec onto the deployment harness.
func (t Topology) clusterConfig() ClusterConfig {
	cfg := ClusterConfig{
		Topology:     cluster.Flat,
		Stages:       t.Stages,
		Jobs:         t.Jobs,
		Shards:       t.Shards,
		Standbys:     t.Standbys,
		Placement:    t.Placement,
		VirtualNodes: t.VirtualNodes,
		DataDir:      t.DataDir,
		Workload:     t.Workload,
		Capacity:     t.Capacity,
		Incremental:  t.Incremental,
		Net:          t.Net,
	}
	if t.AggregatorFanIn > 0 {
		cfg.Topology = cluster.Hierarchical
		cfg.Aggregators = (t.Stages + t.AggregatorFanIn - 1) / t.AggregatorFanIn
	}
	if t.Shards <= 1 {
		cfg.Shards = 0
	}
	return cfg
}

// StartTopology builds and starts the deployment a Topology describes. A
// one-shard spec is behaviorally identical to the classic StartGlobal +
// BuildCluster path; higher shard counts add the routing tier. The
// returned Deployment owns every role it started; Close tears it all down.
func StartTopology(t Topology) (*Deployment, error) {
	if t.Shards == 0 {
		t.Shards = 1
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	c, err := cluster.Build(t.clusterConfig())
	if err != nil {
		return nil, err
	}
	return &Deployment{c: c, spec: t}, nil
}

// Deployment is a running control plane started from a Topology spec. It
// presents one uniform surface regardless of shape: Stats merges every
// shard, Route answers ownership, Rebalance drives handoffs, RunCycle runs
// one control round across the whole deployment.
type Deployment struct {
	c    *cluster.Cluster
	spec Topology

	// opMu serializes the mutating operations (ApplyConfig, Resize,
	// SetStages, Grow/ShrinkAggregators, SetJobWeight) against each other.
	// None of them may run concurrently with RunCycle — the daemon's serve
	// loop applies them only at cycle boundaries.
	opMu sync.Mutex
}

// DeploymentStats is the unified operational snapshot of a deployment: the
// fleet-wide counters summed over every shard, plus each shard leader's
// full per-controller snapshot. It supersedes walking the per-role
// accessors (Global.NumQuarantined, Aggregator.ReHomes, ...) by hand.
type DeploymentStats struct {
	// Shards is the number of concurrently active shard leaders (one for
	// unsharded deployments).
	Shards int
	// Children, Stages and Quarantined count the fleet.
	Children    int
	Stages      int
	Quarantined int
	// CallErrors, Evictions, FencedCalls and ReHomes are fleet-wide sums.
	CallErrors  uint64
	Evictions   uint64
	FencedCalls uint64
	ReHomes     uint64
	// MaxEpoch is the highest leadership epoch any shard leads with.
	MaxEpoch uint64
	// Moves and Rebalances count child handoffs and rebalance sweeps.
	Moves      uint64
	Rebalances uint64
	// PerShard holds each shard leader's snapshot, indexed by shard.
	PerShard []ControllerStats
}

// Stats snapshots the whole deployment.
func (d *Deployment) Stats() DeploymentStats {
	if r := d.c.Router; r != nil {
		st := r.Stats()
		return DeploymentStats{
			Shards:      r.NumShards(),
			Children:    st.Children,
			Stages:      st.Stages,
			Quarantined: st.Quarantined,
			CallErrors:  st.CallErrors,
			Evictions:   st.Evictions,
			FencedCalls: st.FencedCalls,
			ReHomes:     st.ReHomes,
			MaxEpoch:    st.MaxEpoch,
			Moves:       st.Moves,
			Rebalances:  st.Rebalances,
			PerShard:    st.Shards,
		}
	}
	cs := d.c.Global.Stats()
	return DeploymentStats{
		Shards:      1,
		Children:    cs.Children,
		Stages:      cs.Stages,
		Quarantined: cs.Quarantined,
		CallErrors:  cs.CallErrors,
		Evictions:   cs.Evictions,
		FencedCalls: cs.FencedCalls,
		ReHomes:     cs.ReHomes,
		MaxEpoch:    cs.Epoch,
		PerShard:    []ControllerStats{cs},
	}
}

// Route returns the shard currently owning childID and that shard's
// effective leader. Unsharded deployments route everything to shard 0.
func (d *Deployment) Route(childID uint64) (int, *Global) {
	if r := d.c.Router; r != nil {
		return r.Route(childID)
	}
	return 0, d.c.Global
}

// Rebalance moves every child whose placement disagrees with its current
// owner back to its placement shard (a no-op on unsharded deployments) and
// returns the number of children moved.
func (d *Deployment) Rebalance(ctx context.Context) (int, error) {
	if r := d.c.Router; r != nil {
		return r.Rebalance(ctx)
	}
	return 0, nil
}

// RunCycle executes one control round across the whole deployment: every
// shard leader concurrently, merged as per-phase maxima (shards overlap in
// time), or the single controller's cycle.
func (d *Deployment) RunCycle(ctx context.Context) (Breakdown, error) {
	return d.c.RunControlCycle(ctx)
}

// EnforceUniform applies one per-job rule across every shard in one round,
// each leader broadcasting it over the marshal-once shared-frame path. It
// returns the number of stages that applied the rule.
func (d *Deployment) EnforceUniform(ctx context.Context, jobID uint64, action RuleAction, limit Rates) (int, error) {
	if r := d.c.Router; r != nil {
		return r.EnforceUniform(ctx, jobID, action, limit)
	}
	return d.c.Global.EnforceUniform(ctx, jobID, action, limit)
}

// Summary digests the deployment's recorded control-round latency.
func (d *Deployment) Summary() Summary { return d.c.Recorder().Summarize() }

// NumShards returns the number of concurrently active shard leaders.
func (d *Deployment) NumShards() int {
	if r := d.c.Router; r != nil {
		return r.NumShards()
	}
	return 1
}

// Shard returns shard i's effective leader — the escape hatch for
// experiments that reach into one shard (killing its leader, inspecting
// its store). Unsharded deployments expose their controller as shard 0.
func (d *Deployment) Shard(i int) *Global {
	if r := d.c.Router; r != nil {
		return r.Group(i).Leader()
	}
	return d.c.Global
}

// Cluster exposes the underlying deployment harness: the simulated
// network, the stage fleet, the per-role instrumentation.
func (d *Deployment) Cluster() *Cluster { return d.c }

// Close tears the whole deployment down.
func (d *Deployment) Close() { d.c.Close() }

// Routing-tier wire metadata, for programs that query a live deployment's
// shard table over RPC (see PROTOCOL.md).
type (
	// ShardQuery asks any controller of a sharded deployment for its
	// routing metadata.
	ShardQuery = wire.ShardQuery
	// ShardMap is the routing table a ShardQuery answer carries.
	ShardMap = wire.ShardMap
	// ShardEntry describes one shard in a ShardMap.
	ShardEntry = wire.ShardEntry
)

// DefaultVirtualNodes is the default placement-ring granularity.
const DefaultVirtualNodes = shard.DefaultVirtualNodes
