package shard

import "testing"

func TestRingPlaceRangeAndDeterminism(t *testing.T) {
	r := NewRing(4, 0)
	if r.Shards() != 4 {
		t.Fatalf("shards = %d", r.Shards())
	}
	for id := uint64(1); id <= 1000; id++ {
		s := r.Place(id)
		if s < 0 || s >= 4 {
			t.Fatalf("child %d placed on shard %d", id, s)
		}
		if again := NewRing(4, 0).Place(id); again != s {
			t.Fatalf("child %d: placement not deterministic (%d vs %d)", id, s, again)
		}
	}
}

func TestRingSingleShard(t *testing.T) {
	r := NewRing(1, 0)
	for id := uint64(1); id <= 100; id++ {
		if s := r.Place(id); s != 0 {
			t.Fatalf("child %d placed on shard %d with one shard", id, s)
		}
	}
}

func TestRingBalance(t *testing.T) {
	const shards, children = 4, 10000
	r := NewRing(shards, 0)
	counts := make([]int, shards)
	for id := uint64(1); id <= children; id++ {
		counts[r.Place(id)]++
	}
	// Consistent hashing is not perfectly uniform; 64 virtual nodes per
	// shard should keep every shard within 2x of the fair share.
	fair := children / shards
	for s, n := range counts {
		if n < fair/2 || n > fair*2 {
			t.Errorf("shard %d owns %d of %d children (fair share %d)", s, n, children, fair)
		}
	}
}

func TestRingMinimalDisruption(t *testing.T) {
	const children = 10000
	before := NewRing(4, 0)
	after := NewRing(5, 0)
	moved := 0
	for id := uint64(1); id <= children; id++ {
		if before.Place(id) != after.Place(id) {
			moved++
		}
	}
	// Growing 4 -> 5 shards should move roughly 1/5 of the children; a
	// modulo placement would move ~4/5. Assert well under half.
	if moved > children/2 {
		t.Errorf("adding one shard moved %d/%d children", moved, children)
	}
	if moved == 0 {
		t.Error("adding one shard moved no children")
	}
}
