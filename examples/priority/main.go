// Priority: end-to-end QoS enforcement over a saturated parallel file
// system.
//
// Three jobs hammer a shared Lustre-like PFS simulator through enforcing
// data-plane stages (token buckets on the I/O path). The jobs carry QoS
// weights 1, 2, and 4. The demo runs two phases:
//
//  1. No control plane: every job takes what it can; throughput is
//     first-come-first-served — the I/O interference problem the paper
//     opens with.
//  2. PSFA control plane: a global controller collects measured demand
//     every 100 ms and retunes per-stage limits; sustained throughput
//     converges to the 1:2:4 weighted shares.
//
// This example uses manual assembly (StartEnforcingStage + StartGlobal +
// AddStage): its stages are enforcing stages on a real PFS-simulator I/O
// path with per-job QoS weights, which the uniform fleets of
// sdscale.StartTopology do not model. Start with examples/quickstart for
// the declarative path.
//
// Run with:
//
//	go run ./examples/priority
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"github.com/dsrhaslab/sdscale"
)

const (
	jobs      = 3
	phaseTime = 4 * time.Second
	// pfsDataCap is the aggregate data IOPS the PFS sustains; the control
	// plane is configured to admit 90% of it, the usual administrator
	// headroom that keeps PFS queues bounded (paper §III-C: the maximum
	// rate "handled efficiently" is set by system administrators).
	pfsDataCap = 3000
	adminCap   = pfsDataCap * 9 / 10
)

func main() {
	net := sdscale.NewSimNet(sdscale.SimNetConfig{})
	fs := sdscale.NewFileSystem(sdscale.FileSystemConfig{
		OSTs:        4,
		OSTCapacity: pfsDataCap / 4,
		MDSCapacity: 1000,
	})

	// One enforcing stage per job, unlimited until the control plane says
	// otherwise.
	var stages []*sdscale.EnforcingStage
	for j := 1; j <= jobs; j++ {
		st, err := sdscale.StartEnforcingStage(sdscale.EnforcingStageConfig{
			ID:      uint64(j),
			JobID:   uint64(j),
			Weight:  weightOf(j),
			Network: net.Host(fmt.Sprintf("stage-%d", j)),
			FS:      fs,
			Window:  500 * time.Millisecond,
		})
		if err != nil {
			log.Fatalf("start stage: %v", err)
		}
		defer st.Close()
		stages = append(stages, st)
	}

	// The job workloads: each job pushes data ops as fast as its stage
	// admits them, from a few parallel workers.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for _, st := range stages {
		for w := 0; w < 12; w++ {
			wg.Add(1)
			go func(st *sdscale.EnforcingStage) {
				defer wg.Done()
				for ctx.Err() == nil {
					st.Submit(ctx, sdscale.ClassData)
				}
			}(st)
		}
	}

	fmt.Printf("PFS capacity: %d data IOPS (control plane admits %d); jobs weighted 1:2:4, all saturating\n\n", pfsDataCap, adminCap)

	// Phase 1: anarchy.
	before := snapshot(fs)
	time.Sleep(phaseTime)
	after := snapshot(fs)
	fmt.Println("phase 1 — no control plane (interference, FCFS):")
	report(before, after, phaseTime)

	// Phase 2: the SDS control plane arbitrates.
	global, err := sdscale.StartGlobal(sdscale.GlobalConfig{
		Network:   net.Host("controller"),
		Algorithm: sdscale.PSFA(),
		Capacity:  sdscale.Rates{adminCap, 1000},
	})
	if err != nil {
		log.Fatalf("start controller: %v", err)
	}
	defer global.Close()
	for _, st := range stages {
		if err := global.AddStage(ctx, st.Info()); err != nil {
			log.Fatalf("attach stage: %v", err)
		}
	}
	loopCtx, stopLoop := context.WithCancel(ctx)
	defer stopLoop()
	go global.Run(loopCtx, 100*time.Millisecond)

	// Let the feedback loop converge, then measure.
	time.Sleep(2 * time.Second)
	before = snapshot(fs)
	time.Sleep(phaseTime)
	after = snapshot(fs)
	fmt.Println("phase 2 — PSFA control plane (weighted shares):")
	report(before, after, phaseTime)

	fmt.Println("per-stage limits enforced in the final cycle:")
	for _, st := range stages {
		limits, unlimited := st.Limits()
		fmt.Printf("  job %d: data limit %7.1f IOPS (unlimited=%v)\n",
			st.Info().JobID, limits[sdscale.ClassData], unlimited)
	}

	cancel()
	wg.Wait()
}

func weightOf(job int) float64 {
	switch job {
	case 1:
		return 1
	case 2:
		return 2
	default:
		return 4
	}
}

// snapshot captures each job's completed data-op count.
func snapshot(fs *sdscale.FileSystem) [jobs + 1]float64 {
	var s [jobs + 1]float64
	for j := 1; j <= jobs; j++ {
		s[j] = fs.ClientOps(uint64(j))[sdscale.ClassData]
	}
	return s
}

// report prints each job's achieved IOPS over the window.
func report(before, after [jobs + 1]float64, window time.Duration) {
	var total float64
	for j := 1; j <= jobs; j++ {
		total += (after[j] - before[j]) / window.Seconds()
	}
	for j := 1; j <= jobs; j++ {
		iops := (after[j] - before[j]) / window.Seconds()
		share := 0.0
		if total > 0 {
			share = 100 * iops / total
		}
		fmt.Printf("  job %d (weight %g): %7.1f IOPS  (%4.1f%% of achieved)\n",
			j, weightOf(j), iops, share)
	}
	fmt.Printf("  aggregate: %.1f IOPS\n\n", total)
}
