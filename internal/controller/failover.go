package controller

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/dsrhaslab/sdscale/internal/rpc"
	"github.com/dsrhaslab/sdscale/internal/stage"
	"github.com/dsrhaslab/sdscale/internal/wire"
)

// Warm-standby failover defaults. The lease is five sync intervals: a
// standby tolerates a few lost or delayed syncs before concluding the
// primary is dead, keeping spurious promotions rare without stretching the
// control gap much past the paper's one-second cycle period.
const (
	// DefaultSyncInterval is how often a primary replicates state to its
	// standby (and implicitly renews its leadership lease).
	DefaultSyncInterval = 50 * time.Millisecond
	// DefaultLeaseTimeout is how long a standby waits without a StateSync
	// before promoting itself.
	DefaultLeaseTimeout = 250 * time.Millisecond
)

// ErrDeposed is returned by RunCycle once a stale-epoch rejection has proven
// that a newer leader holds the control plane: the deposed primary must stop
// running cycles (its children fence everything it sends anyway).
var ErrDeposed = errors.New("controller: deposed by a newer leadership epoch")

// ErrStandby is returned by RunCycle on a standby that has not promoted
// itself: a passive mirror must not drive control cycles.
var ErrStandby = errors.New("controller: standby has not been promoted")

// Epoch returns the controller's current leadership epoch.
func (g *Global) Epoch() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.epoch
}

// Deposed reports whether the controller has stepped down after observing a
// newer leadership epoch.
func (g *Global) Deposed() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.deposed
}

// Promoted reports whether a standby controller has taken over as primary.
func (g *Global) Promoted() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.promoted
}

// stepDown marks the controller deposed (once) after evidence of a newer
// leader: either a child fenced one of its calls, or its standby answered a
// sync with a higher epoch.
func (g *Global) stepDown(why string) {
	g.mu.Lock()
	if g.deposed {
		g.mu.Unlock()
		return
	}
	g.deposed = true
	g.mu.Unlock()
	g.faults.StepDown()
	g.logf("controller: stepping down: %s", why)
}

// handleStateSync is the standby side of state replication: mirror the
// primary's state, renew the leadership lease, and echo the epoch. A sync
// from a lower epoch — a deposed primary that has not yet noticed — is
// rejected with CodeStaleEpoch naming the current epoch, which forces the
// sender to step down.
func (g *Global) handleStateSync(m *wire.StateSync) (wire.Message, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if m.Epoch < g.epoch || (g.promoted && m.Epoch == g.epoch) {
		g.fencedSyncs++
		return nil, &wire.ErrorReply{
			Code:  wire.CodeStaleEpoch,
			Text:  fmt.Sprintf("standby: sender epoch %d deposed, current epoch is %d", m.Epoch, g.epoch),
			Epoch: g.epoch,
		}
	}
	if g.promoted {
		// A leader with a strictly newer epoch exists: fall back to being
		// its passive mirror.
		g.promoted = false
		g.logf("controller: yielding promotion to newer epoch %d", m.Epoch)
	}
	g.epoch = m.Epoch
	g.mirror = m
	lease := time.Duration(m.LeaseMicros) * time.Microsecond
	if lease <= 0 {
		// The primary granted no lease duration — a misconfiguration that
		// would silently skew the failover window if absorbed quietly.
		// Fall back to the local timeout, but count it and say so once.
		lease = g.cfg.LeaseTimeout
		g.faults.DefaultedLease()
		if !g.defaultedLeaseLogged {
			g.defaultedLeaseLogged = true
			g.logf("controller: primary %d sent StateSync without a lease duration; defaulting to local %v (counted in DefaultedLeases)",
				m.PrimaryID, g.cfg.LeaseTimeout)
		}
	}
	now := time.Now()
	g.leaseUntil = now.Add(lease)
	g.lastSyncAt = now
	return &wire.StateSyncAck{ID: m.PrimaryID, Epoch: g.epoch}, nil
}

// FencedSyncs returns how many StateSyncs from deposed primaries this
// controller rejected.
func (g *Global) FencedSyncs() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.fencedSyncs
}

// runStandby blocks until the leadership lease expires — then promotes,
// directly with no quorum configured or after winning an election with one —
// or until the standby is promoted by other means, polling at a fraction of
// the lease timeout so expiry is detected promptly.
func (g *Global) runStandby(ctx context.Context) error {
	poll := g.cfg.LeaseTimeout / 8
	if poll < time.Millisecond {
		poll = time.Millisecond
	}
	// Jittered retry delays break ties between standbys whose leases expire
	// together: the first to retry wins the next round, the other sees the
	// new primary's StateSync before candidating again.
	jitter := rand.New(rand.NewSource(time.Now().UnixNano() ^ int64(g.cfg.ID)<<20))
	for {
		g.mu.Lock()
		promoted := g.promoted
		leaseUntil := g.leaseUntil
		g.mu.Unlock()
		if promoted {
			return nil
		}
		if time.Now().After(leaseUntil) {
			if len(g.cfg.StandbyAddrs) == 0 {
				// PR 2 behaviour: a lone standby promotes on lease expiry.
				return g.Promote(ctx)
			}
			won, err := g.runElection(ctx)
			if err != nil {
				return err
			}
			if won {
				return nil // runElection promoted us
			}
			// Lost (or split) election: wait a jittered beat before retrying
			// so concurrent candidates desynchronize. A surviving primary's
			// next StateSync renews the lease meanwhile and ends the
			// candidacy.
			delay := 10*time.Millisecond + time.Duration(jitter.Int63n(int64(20*time.Millisecond)))
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(delay):
			}
			continue
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(poll):
		}
	}
}

// handleVoteRequest answers a quorum vote request. A grant is a durable
// promise: the voter records the epoch through its store (when it has one)
// before the grant leaves the process, so a crash-restarted voter can never
// hand the same epoch to a second candidate. A controller that is actively
// leading denies every vote — its own liveness refutes the candidate's
// premise that the primary is gone — and a standby denies while its lease
// is current, the proposed epoch is not strictly newest, or the candidate's
// mirror lags its own (electing a stale mirror would roll back rules the
// fleet already holds).
func (g *Global) handleVoteRequest(m *wire.VoteRequest) (wire.Message, error) {
	g.mu.Lock()
	leading := (!g.cfg.Standby || g.promoted) && !g.deposed
	var myCycle uint64
	if g.mirror != nil {
		myCycle = g.mirror.Cycle
	}
	deny := g.epoch
	if g.votedEpoch > deny {
		deny = g.votedEpoch
	}
	if leading || m.Epoch <= deny || time.Now().Before(g.leaseUntil) || m.Cycle < myCycle {
		g.mu.Unlock()
		g.faults.Vote(false)
		return &wire.LeaseGrant{VoterID: g.cfg.ID, Granted: false, Epoch: deny}, nil
	}
	g.votedEpoch = m.Epoch
	// Granting a vote restarts the voter's own election clock: the winner
	// gets a full lease to promote and start syncing before this standby
	// considers candidating itself.
	g.leaseUntil = time.Now().Add(g.cfg.LeaseTimeout)
	g.mu.Unlock()
	if g.cfg.Store != nil {
		if err := g.cfg.Store.AppendVote(m.Epoch); err != nil {
			// An unpersisted promise is not a promise: deny rather than
			// risk double-granting the epoch after a restart. votedEpoch
			// stays raised, which is safe (conservative) in memory.
			g.storeFault("persist vote", err)
			g.faults.Vote(false)
			return &wire.LeaseGrant{VoterID: g.cfg.ID, Granted: false, Epoch: m.Epoch}, nil
		}
	}
	g.faults.Vote(true)
	g.logf("controller: granted leadership vote to candidate %d at epoch %d", m.CandidateID, m.Epoch)
	return &wire.LeaseGrant{VoterID: g.cfg.ID, Granted: true, Epoch: m.Epoch}, nil
}

// runElection proposes this standby as primary at a fresh epoch and asks
// every quorum peer for a vote. It wins — and promotes — on a majority of
// the quorum (peers plus itself; it votes for itself first, durably). A
// denial carrying a higher epoch raises this controller's floor so the next
// proposal clears it.
func (g *Global) runElection(ctx context.Context) (bool, error) {
	g.mu.Lock()
	if g.promoted {
		g.mu.Unlock()
		return true, nil
	}
	proposed := g.epoch
	if g.votedEpoch > proposed {
		proposed = g.votedEpoch
	}
	proposed++
	var cycle uint64
	if g.mirror != nil {
		cycle = g.mirror.Cycle
	}
	g.votedEpoch = proposed // self-vote
	g.mu.Unlock()
	g.faults.Election()
	if g.cfg.Store != nil {
		// The self-vote must be durable before any peer hears the proposal.
		if err := g.cfg.Store.AppendVote(proposed); err != nil {
			g.storeFault("persist self-vote", err)
		}
	}
	peers := g.cfg.StandbyAddrs
	req := &wire.VoteRequest{CandidateID: g.cfg.ID, Epoch: proposed, Cycle: cycle}
	var mu sync.Mutex
	votes := 1 // self
	var maxSeen uint64
	rpc.Scatter(ctx, len(peers), len(peers), func(i int) {
		cctx, cancel := context.WithTimeout(ctx, g.cfg.CallTimeout)
		defer cancel()
		cli, err := rpc.Dial(cctx, g.cfg.Network, peers[i], rpc.DialOptions{Meter: g.cfg.Meter, MaxCodec: g.cfg.MaxCodec})
		if err != nil {
			return // dead peer: counts as a missing vote
		}
		defer cli.Close()
		resp, err := cli.Call(cctx, req)
		if err != nil {
			return
		}
		lg, ok := resp.(*wire.LeaseGrant)
		if !ok {
			return
		}
		mu.Lock()
		defer mu.Unlock()
		if lg.Granted && lg.Epoch == proposed {
			votes++
		} else if !lg.Granted && lg.Epoch > maxSeen {
			maxSeen = lg.Epoch
		}
	})
	if ctx.Err() != nil {
		return false, ctx.Err()
	}
	// The quorum is the addressed peers plus this candidate.
	majority := (len(peers)+1)/2 + 1
	if votes < majority {
		g.mu.Lock()
		if maxSeen > g.votedEpoch {
			// Someone leads (or voted) at a higher epoch: raise the floor so
			// the next proposal clears it.
			g.votedEpoch = maxSeen
		}
		g.mu.Unlock()
		g.logf("controller: election for epoch %d lost: %d/%d votes (majority %d)", proposed, votes, len(peers)+1, majority)
		return false, nil
	}
	g.logf("controller: election for epoch %d won: %d/%d votes", proposed, votes, len(peers)+1)
	return true, g.promoteTo(ctx, proposed)
}

// Promote turns a standby into the primary at the next free epoch: bump the
// leadership epoch past everything the old primary used (and everything
// this controller ever voted for), adopt the mirrored membership (dialing
// each child), re-seed per-child delta-enforcement caches with the rules the
// old primary last sent, and restore job weights and the cycle counter.
// Children the mirror missed — or that cannot be dialed — re-home themselves
// through the registration endpoint. Promote is idempotent.
func (g *Global) Promote(ctx context.Context) error {
	g.mu.Lock()
	epoch := g.epoch
	if g.votedEpoch > epoch {
		// Never lead with an epoch already promised to another candidate.
		epoch = g.votedEpoch
	}
	epoch++
	g.mu.Unlock()
	return g.promoteTo(ctx, epoch)
}

// promoteTo is Promote at an explicit epoch (a won election's granted
// epoch). The epoch allocation is fenced through the store — persisted
// durably before this controller mutates any leadership state or contacts
// any child — so a crash cannot forget an epoch the fleet may already have
// adopted.
func (g *Global) promoteTo(ctx context.Context, epoch uint64) error {
	g.mu.Lock()
	if g.promoted {
		g.mu.Unlock()
		return nil
	}
	if epoch <= g.epoch {
		epoch = g.epoch + 1
	}
	g.mu.Unlock()
	if g.cfg.Store != nil {
		if err := g.cfg.Store.AppendEpoch(epoch); err != nil {
			// Keep the promotion: a dead log disk must not leave the fleet
			// leaderless. Epoch fencing still holds in memory; only
			// crash-restart fencing is degraded, and that is logged.
			g.storeFault("persist promotion epoch", err)
		}
	}
	g.mu.Lock()
	if g.promoted {
		g.mu.Unlock()
		return nil
	}
	g.promoted = true
	if epoch > g.epoch {
		g.epoch = epoch
	}
	m := g.mirror
	if m != nil {
		if m.Cycle > g.cycle {
			g.cycle = m.Cycle
		}
		for _, w := range m.Weights {
			g.jobWeights[w.JobID] = w.Weight
		}
	}
	// The control gap of this failover starts at the last state the old
	// primary managed to replicate; RunCycle closes it on the first
	// completed cycle.
	g.gapStart = g.lastSyncAt
	if g.gapStart.IsZero() {
		g.gapStart = time.Now()
	}
	g.mu.Unlock()
	g.faults.Promotion()
	g.logf("controller: promoted to primary at epoch %d", epoch)
	if len(g.cfg.StandbyAddrs) > 0 {
		// The new primary takes over replication: its StateSyncs renew the
		// surviving standbys' leases, ending their candidacies.
		g.startSync()
	}
	if m != nil && g.cfg.Store != nil {
		// Re-log the adopted weights so the new primary's store is
		// self-contained (the old primary's log is unreachable by now).
		for _, w := range m.Weights {
			if err := g.cfg.Store.AppendWeight(w.JobID, w.Weight); err != nil {
				g.storeFault("append adopted weight", err)
			}
		}
	}
	if m == nil {
		return nil
	}
	g.adoptMembers(ctx, m, "promote")
	return nil
}

// adoptMembers dials every child in the mirrored (or recovered) state,
// adds it to the control plane, and re-seeds its delta-enforcement cache
// with the last rules the previous primary sent it. AddStage/AddAggregator
// append the registrations to the store; the seeded rules are appended here
// so the adopter's log is complete without waiting for the rules to change
// again.
func (g *Global) adoptMembers(ctx context.Context, m *wire.StateSync, why string) {
	// Adoption dials every mirrored child, so it runs with the same bounded
	// parallelism as a control cycle's scatter — sequential dials would put
	// the whole fleet size on the recovery critical path.
	rpc.Scatter(ctx, len(m.Members), g.cfg.FanOut, func(i int) {
		mem := &m.Members[i]
		var err error
		switch mem.Role {
		case wire.RoleStage:
			err = g.AddStage(ctx, stage.Info{ID: mem.ID, JobID: mem.JobID, Weight: mem.Weight, Addr: mem.Addr})
		case wire.RoleAggregator:
			stages := make([]stage.Info, len(mem.Stages))
			for k, s := range mem.Stages {
				stages[k] = stage.Info{ID: s.ID, JobID: s.JobID, Weight: s.Weight, Addr: s.Addr}
			}
			err = g.AddAggregator(ctx, mem.ID, mem.Addr, stages)
		default:
			return
		}
		if err != nil {
			// The child may be down or already re-homing; the registration
			// endpoint picks it up when it re-registers.
			g.logf("controller: %s: adopt %s %d: %v", why, mem.Role, mem.ID, err)
			return
		}
		if c := g.members.get(mem.ID); c != nil && len(mem.Rules) > 0 {
			c.seedRules(mem.Rules)
			g.logRules(m.Cycle, mem.ID, mem.Rules)
		}
	})
}

// Recover rebuilds a cold-started controller from its store: replayed
// membership, per-child last-enforced rules, job weights, and the cycle
// counter are adopted; leadership resumes at a fresh epoch strictly above
// everything the disk has seen (epoch or vote), persisted before any child
// is contacted. Children the recovered state misses re-home themselves
// through the registration endpoint, and the first control cycle — every
// adopted child starts with an empty report cache — is naturally a full
// collect+enforce pass that pushes the bumped epoch to the whole fleet.
func (g *Global) Recover(ctx context.Context) error {
	if g.cfg.Store == nil {
		return errors.New("controller: Recover requires a configured Store")
	}
	rec := g.cfg.Store.Recovered()
	g.mu.Lock()
	epoch := g.epoch
	if rec.Epoch > epoch {
		epoch = rec.Epoch
	}
	if rec.VotedEpoch > epoch {
		epoch = rec.VotedEpoch
	}
	epoch++
	g.mu.Unlock()
	// Unlike promotion, recovery refuses to proceed without the durable
	// epoch: the sole reason to cold-start from the store is crash safety,
	// and an unfenced epoch would hand the next crash a duplicate.
	if err := g.cfg.Store.AppendEpoch(epoch); err != nil {
		return fmt.Errorf("controller: recover: persist epoch: %w", err)
	}
	g.mu.Lock()
	g.epoch = epoch
	g.votedEpoch = epoch
	if g.cfg.Standby {
		g.promoted = true // a recovered controller leads, whatever its config says
	}
	if rec.Cycle > g.cycle {
		g.cycle = rec.Cycle
	}
	for _, w := range rec.State.Weights {
		g.jobWeights[w.JobID] = w.Weight
	}
	g.gapStart = time.Now()
	g.mu.Unlock()
	st := g.cfg.Store.Stats()
	g.logf("controller: recovering at epoch %d: %d members, %d weights, cycle %d (replayed %d records in %v)",
		epoch, len(rec.State.Members), len(rec.State.Weights), rec.Cycle, st.Replay.Records, st.Replay.Duration)
	if len(g.cfg.StandbyAddrs) > 0 {
		g.startSync()
	}
	g.adoptMembers(ctx, rec.State, "recover")
	return nil
}

// startSync launches the primary-side replication loop towards every
// configured standby. Idempotent: a controller that already replicates
// (because it was born primary) keeps its existing loop.
func (g *Global) startSync() {
	g.mu.Lock()
	if g.syncCancel != nil {
		g.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	g.syncCancel = cancel
	g.syncDone = make(chan struct{})
	g.mu.Unlock()
	go g.syncLoop(ctx)
}

// syncLoop replicates state to every standby each SyncInterval. The state is
// marshalled once per tick (a shared frame) and shipped to all standbys
// concurrently. Each standby is dialed lazily (it may come up after the
// primary) and redialed after transport errors; the loop exits for good once
// the primary is deposed — by any standby's fencing or higher-epoch ack.
func (g *Global) syncLoop(ctx context.Context) {
	defer close(g.syncDone)
	targets := g.cfg.StandbyAddrs
	clients := make([]*rpc.Client, len(targets))
	defer func() {
		for _, cli := range clients {
			if cli != nil {
				cli.Close()
			}
		}
	}()
	tick := time.NewTicker(g.cfg.SyncInterval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		if g.Deposed() {
			return
		}
		msg := g.buildStateSync()
		// One encode per tick, shared across every standby's send queue.
		f := rpc.NewSharedFrame(msg)
		rpc.Scatter(ctx, len(targets), len(targets), func(i int) {
			if clients[i] == nil {
				c, err := rpc.Dial(ctx, g.cfg.Network, targets[i], rpc.DialOptions{Meter: g.cfg.Meter, MaxCodec: g.cfg.MaxCodec})
				if err != nil {
					return // standby not up yet: retry next tick
				}
				clients[i] = c
			}
			if err := g.syncOnce(ctx, clients[i], f, msg.Epoch); err != nil {
				if cur, ok := rpc.StaleEpochError(err); ok {
					g.stepDown(fmt.Sprintf("standby %s rejected state sync at epoch %d", targets[i], cur))
					return
				}
				if errors.Is(err, ErrDeposed) || ctx.Err() != nil {
					return
				}
				clients[i].Close()
				clients[i] = nil
			}
		})
		f.Release()
		if g.Deposed() {
			return
		}
	}
}

// syncOnce ships one pre-encoded StateSync frame and interprets the ack: a
// standby echoing a higher epoch has promoted itself, so the sender steps
// down.
func (g *Global) syncOnce(ctx context.Context, cli *rpc.Client, f *rpc.SharedFrame, epoch uint64) error {
	cctx, cancel := context.WithTimeout(ctx, g.cfg.CallTimeout)
	call := cli.GoShared(cctx, f)
	resp, err := call.Wait(cctx)
	cancel()
	if err != nil {
		return err
	}
	ack, ok := resp.(*wire.StateSyncAck)
	if !ok {
		return fmt.Errorf("controller: unexpected %s from standby", resp.Type())
	}
	if ack.Epoch > epoch {
		g.stepDown(fmt.Sprintf("standby promoted itself to epoch %d", ack.Epoch))
		return ErrDeposed
	}
	return nil
}

// buildStateSync snapshots everything a standby needs to take over:
// leadership epoch, cycle counter, lease duration, the full membership with
// per-child last-enforced rules, and the job-weight table.
func (g *Global) buildStateSync() *wire.StateSync {
	children := g.members.snapshot()
	members := make([]wire.MemberState, 0, len(children))
	for _, c := range children {
		m := wire.MemberState{
			Role:   c.role,
			ID:     c.info.ID,
			JobID:  c.info.JobID,
			Weight: c.info.Weight,
			Addr:   c.info.Addr,
			Rules:  c.snapshotRules(),
		}
		if stages := c.stageList(); len(stages) > 0 {
			m.Stages = make([]wire.StageEntry, len(stages))
			for k, s := range stages {
				m.Stages[k] = wire.StageEntry{ID: s.ID, JobID: s.JobID, Weight: s.Weight, Addr: s.Addr}
			}
		}
		members = append(members, m)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	msg := &wire.StateSync{
		PrimaryID:   g.cfg.ID,
		Epoch:       g.epoch,
		Cycle:       g.cycle,
		LeaseMicros: uint64(g.cfg.LeaseTimeout / time.Microsecond),
		Members:     members,
		Weights:     make([]wire.JobWeight, 0, len(g.jobWeights)),
	}
	for id, w := range g.jobWeights {
		msg.Weights = append(msg.Weights, wire.JobWeight{JobID: id, Weight: w})
	}
	return msg
}
