package simnet

import (
	"context"
	"testing"
	"time"
)

func TestKillConnsSeversButAllowsRedial(t *testing.T) {
	n := New(fastCfg())
	client, server := pair(t, n)
	defer client.Close()
	defer server.Close()

	n.Host("server").KillConns()
	buf := make([]byte, 1)
	if _, err := client.Read(buf); err == nil {
		t.Error("read on killed connection succeeded")
	}
	if n.Host("server").Partitioned() {
		t.Error("KillConns partitioned the host")
	}
	// Unlike a partition, fresh dials work immediately.
	c2, s2 := pair(t, n)
	c2.Close()
	s2.Close()
}

// Closing a listener must sever connections still waiting in its backlog:
// otherwise the dialer holds a conn no one will ever accept and blocks
// forever on its first read.
func TestListenerCloseSeversBacklog(t *testing.T) {
	n := New(fastCfg())
	l, err := n.Host("server").Listen(":0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	c, err := n.Host("client").Dial(ctx, l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	l.Close() // the conn was never accepted

	done := make(chan error, 1)
	go func() {
		buf := make([]byte, 1)
		_, err := c.Read(buf)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Error("read on stranded backlog conn succeeded")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("read on stranded backlog conn hung")
	}
}

func TestFlapScheduleShape(t *testing.T) {
	hosts := []string{"a", "b"}
	evs := FlapSchedule(hosts, 10*time.Millisecond, 5*time.Millisecond, 20*time.Millisecond, 2)
	if len(evs) != len(hosts)*2*2 {
		t.Fatalf("events = %d, want %d", len(evs), len(hosts)*2*2)
	}
	heals := make(map[string]time.Duration)
	for _, ev := range evs {
		switch ev.Action {
		case FaultPartition:
			if down, ok := heals[ev.Host]; ok && ev.At < down {
				t.Errorf("host %s partitioned at %v before previous heal at %v", ev.Host, ev.At, down)
			}
		case FaultHeal:
			heals[ev.Host] = ev.At
		default:
			t.Errorf("unexpected action %v", ev.Action)
		}
	}
	if len(FlapSchedule(nil, 0, time.Millisecond, time.Millisecond, 1)) != 0 {
		t.Error("empty host list produced events")
	}
}

func TestScheduleAppliesEventsInOrder(t *testing.T) {
	n := New(fastCfg())
	h := n.Host("victim")
	s := n.Schedule([]FaultEvent{
		// Deliberately out of order: Schedule must sort by At.
		{At: 30 * time.Millisecond, Host: "victim", Action: FaultHeal},
		{At: 0, Host: "victim", Action: FaultPartition},
	})
	defer s.Stop()

	deadline := time.Now().Add(5 * time.Second)
	for !h.Partitioned() {
		if time.Now().After(deadline) {
			t.Fatal("partition event never applied")
		}
		time.Sleep(time.Millisecond)
	}
	s.Wait()
	if h.Partitioned() {
		t.Error("heal event not applied")
	}
	if got := s.Applied(); got != 2 {
		t.Errorf("Applied = %d, want 2", got)
	}
}

func TestScheduleStopHealsOutstandingPartitions(t *testing.T) {
	n := New(fastCfg())
	h := n.Host("victim")
	s := n.Schedule([]FaultEvent{
		{At: 0, Host: "victim", Action: FaultPartition},
		{At: time.Hour, Host: "victim", Action: FaultHeal},
	})
	deadline := time.Now().Add(5 * time.Second)
	for !h.Partitioned() {
		if time.Now().After(deadline) {
			t.Fatal("partition event never applied")
		}
		time.Sleep(time.Millisecond)
	}
	s.Stop()
	if h.Partitioned() {
		t.Error("Stop left the host partitioned")
	}
}

func TestScheduleKillConnsAction(t *testing.T) {
	n := New(fastCfg())
	client, server := pair(t, n)
	defer client.Close()
	defer server.Close()

	s := n.Schedule([]FaultEvent{{At: 0, Host: "server", Action: FaultKillConns}})
	s.Wait()
	buf := make([]byte, 1)
	if _, err := client.Read(buf); err == nil {
		t.Error("connection survived FaultKillConns")
	}
	if n.Host("server").Partitioned() {
		t.Error("FaultKillConns must not partition the host")
	}
	// Dialing still works; reuse the context-based Dial directly.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	l, err := n.Host("server").Listen(":0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	c, err := n.Host("client").Dial(ctx, l.Addr().String())
	if err != nil {
		t.Fatalf("dial after kill-conns: %v", err)
	}
	c.Close()
}
