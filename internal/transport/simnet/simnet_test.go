package simnet

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"github.com/dsrhaslab/sdscale/internal/transport"
)

// fastCfg removes simulated latency so logic tests run instantly.
func fastCfg() Config { return Config{PropDelay: -1} }

// pair dials a connection between two hosts and returns both ends.
func pair(t *testing.T, n *Net) (client, server net.Conn) {
	t.Helper()
	srv := n.Host("server")
	l, err := srv.Listen(":0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() { l.Close() })

	cli := n.Host("client")
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	c, err := cli.Dial(context.Background(), l.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	s := <-accepted
	t.Cleanup(func() { c.Close(); s.Close() })
	return c, s
}

func TestEcho(t *testing.T) {
	n := New(fastCfg())
	c, s := pair(t, n)

	go func() {
		buf := make([]byte, 64)
		rn, err := s.Read(buf)
		if err != nil {
			t.Errorf("server read: %v", err)
			return
		}
		if _, err := s.Write(buf[:rn]); err != nil {
			t.Errorf("server write: %v", err)
		}
	}()

	msg := []byte("hello control plane")
	if _, err := c.Write(msg); err != nil {
		t.Fatalf("client write: %v", err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatalf("client read: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Errorf("echo = %q, want %q", got, msg)
	}
}

func TestLargeTransfer(t *testing.T) {
	n := New(fastCfg())
	c, s := pair(t, n)

	payload := make([]byte, 1<<20)
	rand.New(rand.NewSource(7)).Read(payload)

	go func() {
		// Write in uneven slabs to exercise chunk boundaries.
		for off := 0; off < len(payload); {
			end := off + 1 + rand.Intn(8192)
			if end > len(payload) {
				end = len(payload)
			}
			if _, err := c.Write(payload[off:end]); err != nil {
				t.Errorf("write: %v", err)
				return
			}
			off = end
		}
		c.Close()
	}()

	got, err := io.ReadAll(s)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("transfer corrupted: got %d bytes, want %d", len(got), len(payload))
	}
}

func TestCloseDrainsThenEOF(t *testing.T) {
	n := New(fastCfg())
	c, s := pair(t, n)

	if _, err := c.Write([]byte("tail")); err != nil {
		t.Fatalf("write: %v", err)
	}
	c.Close()

	got, err := io.ReadAll(s)
	if err != nil {
		t.Fatalf("ReadAll after peer close: %v", err)
	}
	if string(got) != "tail" {
		t.Errorf("drained %q, want %q", got, "tail")
	}
}

func TestWriteAfterPeerClose(t *testing.T) {
	n := New(fastCfg())
	c, s := pair(t, n)
	s.Close()
	// The peer reader is gone; writes must fail rather than hang.
	deadline := time.Now().Add(2 * time.Second)
	c.SetWriteDeadline(deadline)
	var err error
	for i := 0; i < 100; i++ {
		if _, err = c.Write([]byte("x")); err != nil {
			break
		}
	}
	if err == nil {
		t.Fatal("writes to closed peer kept succeeding")
	}
}

func TestLocalCloseFailsOps(t *testing.T) {
	n := New(fastCfg())
	c, _ := pair(t, n)
	c.Close()
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Error("Read after Close succeeded")
	}
	if _, err := c.Write([]byte("x")); err == nil {
		t.Error("Write after Close succeeded")
	}
	if err := c.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestReadDeadline(t *testing.T) {
	n := New(fastCfg())
	c, _ := pair(t, n)
	c.SetReadDeadline(time.Now().Add(20 * time.Millisecond))
	start := time.Now()
	_, err := c.Read(make([]byte, 1))
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("Read = %v, want deadline exceeded", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Error("deadline fired far too late")
	}
}

func TestDeadlineWakesBlockedRead(t *testing.T) {
	n := New(fastCfg())
	c, _ := pair(t, n)
	errc := make(chan error, 1)
	go func() {
		_, err := c.Read(make([]byte, 1))
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the read block
	c.SetReadDeadline(time.Now())     // wake it
	select {
	case err := <-errc:
		if !errors.Is(err, os.ErrDeadlineExceeded) {
			t.Fatalf("Read = %v, want deadline exceeded", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked read was not woken by deadline")
	}
}

func TestClearingDeadlineRearms(t *testing.T) {
	n := New(fastCfg())
	c, s := pair(t, n)
	c.SetReadDeadline(time.Now().Add(-time.Second))
	if _, err := c.Read(make([]byte, 1)); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("Read = %v, want deadline exceeded", err)
	}
	c.SetReadDeadline(time.Time{}) // clear
	go s.Write([]byte("k"))
	buf := make([]byte, 1)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatalf("Read after clearing deadline: %v", err)
	}
}

func TestPropagationDelay(t *testing.T) {
	const delay = 5 * time.Millisecond
	n := New(Config{PropDelay: delay})
	c, s := pair(t, n)

	go func() {
		buf := make([]byte, 8)
		rn, _ := s.Read(buf)
		s.Write(buf[:rn])
	}()

	start := time.Now()
	c.Write([]byte("ping"))
	io.ReadFull(c, make([]byte, 4))
	rtt := time.Since(start)
	if rtt < 2*delay {
		t.Errorf("RTT = %v, want >= %v", rtt, 2*delay)
	}
}

func TestHostProcessingSerializes(t *testing.T) {
	// 20 one-byte messages through one receiving host at 5ms per message
	// must take >= ~100ms, even though they come from 20 parallel senders.
	n := New(Config{ProcTime: 5 * time.Millisecond})
	srv := n.Host("server")
	l, err := srv.Listen(":0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	received := make(chan time.Time, 20)
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 1)
				if _, err := io.ReadFull(c, buf); err == nil {
					received <- time.Now()
				}
			}(c)
		}
	}()

	start := time.Now()
	for i := 0; i < 20; i++ {
		go func(i int) {
			h := n.Host(fmt.Sprintf("client-%d", i))
			c, err := h.Dial(context.Background(), l.Addr().String())
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			c.Write([]byte{1})
		}(i)
	}
	var last time.Time
	for i := 0; i < 20; i++ {
		last = <-received
	}
	// Each message pays 5ms at its own sender (parallel) + 5ms at the
	// shared receiver (serialized): >= 20×5ms total at the receiver.
	if got := last.Sub(start); got < 95*time.Millisecond {
		t.Errorf("20 messages through a 5ms/msg host took %v, want >= ~100ms", got)
	}
}

func TestHostProcessingParallelAcrossHosts(t *testing.T) {
	// The same load spread over 20 receiving hosts must take ~10ms (one
	// send + one receive service), far less than the serialized case.
	n := New(Config{ProcTime: 5 * time.Millisecond})
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < 20; i++ {
		srv := n.Host(fmt.Sprintf("server-%d", i))
		l, err := srv.Listen(":0")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		wg.Add(1)
		go func(l net.Listener) {
			defer wg.Done()
			c, err := l.Accept()
			if err != nil {
				return
			}
			defer c.Close()
			io.ReadFull(c, make([]byte, 1))
		}(l)
		go func(i int, addr string) {
			h := n.Host(fmt.Sprintf("c-%d", i))
			c, err := h.Dial(context.Background(), addr)
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			c.Write([]byte{1})
		}(i, l.Addr().String())
	}
	wg.Wait()
	if got := time.Since(start); got > 80*time.Millisecond {
		t.Errorf("parallel hosts took %v, want ~10ms (well under the 100ms serial case)", got)
	}
}

func TestProcPerByteChargesLargeMessages(t *testing.T) {
	n := New(Config{ProcPerByte: 10 * time.Microsecond}) // 10µs per byte
	c, s := pair(t, n)
	go c.Write(make([]byte, 1000)) // 10ms at sender + 10ms at receiver
	start := time.Now()
	if _, err := io.ReadFull(s, make([]byte, 1000)); err != nil {
		t.Fatal(err)
	}
	if got := time.Since(start); got < 15*time.Millisecond {
		t.Errorf("1000B at 10µs/B arrived in %v, want >= ~20ms", got)
	}
}

func TestBandwidthSerialization(t *testing.T) {
	// 1 MB at 10 MB/s should take >= 100ms to arrive.
	n := New(Config{PropDelay: -1, Bandwidth: 10e6, Queue: 1024})
	c, s := pair(t, n)

	go func() {
		buf := make([]byte, 1<<20)
		c.Write(buf)
	}()

	start := time.Now()
	if _, err := io.ReadFull(s, make([]byte, 1<<20)); err != nil {
		t.Fatalf("read: %v", err)
	}
	if got := time.Since(start); got < 90*time.Millisecond {
		t.Errorf("1MB at 10MB/s arrived in %v, want >= ~100ms", got)
	}
}

func TestConnLimit(t *testing.T) {
	n := New(fastCfg())
	srv := n.Host("server")
	l, err := srv.Listen(":0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			if _, err := l.Accept(); err != nil {
				return
			}
		}
	}()

	cli := n.Host("client")
	cli.SetMaxConns(3)
	var conns []net.Conn
	for i := 0; i < 3; i++ {
		c, err := cli.Dial(context.Background(), l.Addr().String())
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		conns = append(conns, c)
	}
	if got := cli.OutConnCount(); got != 3 {
		t.Fatalf("OutConnCount = %d, want 3", got)
	}
	if _, err := cli.Dial(context.Background(), l.Addr().String()); !errors.Is(err, transport.ErrConnLimit) {
		t.Fatalf("dial over limit = %v, want ErrConnLimit", err)
	}

	// Closing a connection frees a slot.
	conns[0].Close()
	waitFor(t, func() bool { return cli.OutConnCount() < 3 })
	c, err := cli.Dial(context.Background(), l.Addr().String())
	if err != nil {
		t.Fatalf("dial after close: %v", err)
	}
	c.Close()
}

func TestInboundConnsNotLimited(t *testing.T) {
	// The limit models the dialer's pool (paper §IV-A): a host at its
	// limit must still accept inbound connections — an aggregator with
	// 2,500 stages can still be reached by the global controller.
	n := New(fastCfg())
	srv := n.Host("server")
	srv.SetMaxConns(0) // server may dial nothing...
	l, _ := srv.Listen(":0")
	defer l.Close()
	go func() {
		for {
			if _, err := l.Accept(); err != nil {
				return
			}
		}
	}()
	cli := n.Host("client")
	if _, err := cli.Dial(context.Background(), l.Addr().String()); err != nil {
		t.Fatalf("inbound dial to limited host failed: %v", err)
	}
}

func TestDialerConnLimit(t *testing.T) {
	n := New(fastCfg())
	srv := n.Host("server")
	l, _ := srv.Listen(":0")
	defer l.Close()
	go func() {
		for {
			if _, err := l.Accept(); err != nil {
				return
			}
		}
	}()
	cli := n.Host("client")
	cli.SetMaxConns(1)
	if _, err := cli.Dial(context.Background(), l.Addr().String()); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Dial(context.Background(), l.Addr().String()); !errors.Is(err, transport.ErrConnLimit) {
		t.Fatalf("second dial = %v, want ErrConnLimit", err)
	}
}

func TestDefaultConnLimitIs2500(t *testing.T) {
	n := New(Config{})
	h := n.Host("x")
	h.mu.Lock()
	max := h.maxConns
	h.mu.Unlock()
	if max != DefaultMaxConns || DefaultMaxConns != 2500 {
		t.Errorf("default max conns = %d, want 2500", max)
	}
}

func TestPartition(t *testing.T) {
	n := New(fastCfg())
	c, s := pair(t, n)
	srv := n.lookup("server")

	srv.SetPartitioned(true)
	if !srv.Partitioned() {
		t.Fatal("host not marked partitioned")
	}

	// Existing connections are severed.
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Error("read from severed conn succeeded")
	}
	_ = s

	// New dials fail in both directions.
	cli := n.Host("client")
	if _, err := cli.Dial(context.Background(), "server:40000"); !errors.Is(err, ErrHostPartitioned) {
		t.Errorf("dial to partitioned = %v, want ErrHostPartitioned", err)
	}

	// Healing restores connectivity.
	srv.SetPartitioned(false)
	l, err := srv.Listen(":0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go l.Accept()
	if _, err := cli.Dial(context.Background(), l.Addr().String()); err != nil {
		t.Errorf("dial after heal: %v", err)
	}
}

func TestByteAccounting(t *testing.T) {
	n := New(fastCfg())
	c, s := pair(t, n)
	cli, srv := n.lookup("client"), n.lookup("server")

	msg := make([]byte, 1000)
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(s, make([]byte, 1000)); err != nil {
		t.Fatal(err)
	}

	if tx := cli.Meter().Tx(); tx != 1000 {
		t.Errorf("client tx = %d, want 1000", tx)
	}
	if rx := srv.Meter().Rx(); rx != 1000 {
		t.Errorf("server rx = %d, want 1000", rx)
	}
	if rx := cli.Meter().Rx(); rx != 0 {
		t.Errorf("client rx = %d, want 0", rx)
	}
}

func TestDialNoListener(t *testing.T) {
	n := New(fastCfg())
	cli := n.Host("client")
	if _, err := cli.Dial(context.Background(), "nowhere:1"); !errors.Is(err, ErrConnRefused) {
		t.Errorf("dial = %v, want ErrConnRefused", err)
	}
	n.Host("there")
	if _, err := cli.Dial(context.Background(), "there:1"); !errors.Is(err, ErrConnRefused) {
		t.Errorf("dial = %v, want ErrConnRefused", err)
	}
}

func TestDialContextCanceled(t *testing.T) {
	n := New(fastCfg())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	srv := n.Host("server")
	l, _ := srv.Listen(":0")
	defer l.Close()
	// Fill the backlog is hard; canceled context is checked at handoff, so
	// an immediate cancel may still win the race. Accept either outcome but
	// never a hang.
	done := make(chan struct{})
	go func() {
		n.Host("client").Dial(ctx, l.Addr().String())
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Dial hung on canceled context")
	}
}

func TestListenerClose(t *testing.T) {
	n := New(fastCfg())
	srv := n.Host("server")
	l, _ := srv.Listen(":0")
	addr := l.Addr().String()
	errc := make(chan error, 1)
	go func() {
		_, err := l.Accept()
		errc <- err
	}()
	l.Close()
	if err := <-errc; !errors.Is(err, net.ErrClosed) {
		t.Errorf("Accept after close = %v, want net.ErrClosed", err)
	}
	if _, err := n.Host("client").Dial(context.Background(), addr); !errors.Is(err, ErrConnRefused) {
		t.Errorf("dial closed listener = %v, want ErrConnRefused", err)
	}
}

func TestListenErrors(t *testing.T) {
	n := New(fastCfg())
	h := n.Host("h")
	if _, err := h.Listen("noport"); err == nil {
		t.Error("Listen without port succeeded")
	}
	if _, err := h.Listen("other:1"); err == nil {
		t.Error("Listen on foreign host succeeded")
	}
	if _, err := h.Listen(":bad"); err == nil {
		t.Error("Listen with non-numeric port succeeded")
	}
	l, err := h.Listen(":777")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := h.Listen(":777"); err == nil {
		t.Error("double Listen on same port succeeded")
	}
}

func TestAddrStrings(t *testing.T) {
	a := Addr{Host: "h", Port: 9}
	if a.Network() != "sim" || a.String() != "h:9" {
		t.Errorf("Addr = %s/%s", a.Network(), a.String())
	}
	e := Addr{Host: "h", Port: -1}
	if e.String() != "h:ephemeral" {
		t.Errorf("ephemeral Addr = %s", e.String())
	}
}

func TestHostsSnapshot(t *testing.T) {
	n := New(fastCfg())
	n.Host("a")
	n.Host("b")
	n.Host("a") // idempotent
	if got := len(n.Hosts()); got != 2 {
		t.Errorf("Hosts = %d, want 2", got)
	}
}

func TestConcurrentConns(t *testing.T) {
	n := New(fastCfg())
	srv := n.Host("server")
	srv.SetMaxConns(-1)
	l, _ := srv.Listen(":0")
	defer l.Close()

	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				io.Copy(c, c) // echo
			}(c)
		}
	}()

	const workers = 50
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			h := n.Host("client")
			c, err := h.Dial(context.Background(), l.Addr().String())
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer c.Close()
			msg := []byte{byte(id), byte(id >> 8), 1, 2, 3}
			if _, err := c.Write(msg); err != nil {
				t.Errorf("write: %v", err)
				return
			}
			got := make([]byte, len(msg))
			if _, err := io.ReadFull(c, got); err != nil {
				t.Errorf("read: %v", err)
				return
			}
			if !bytes.Equal(got, msg) {
				t.Errorf("echo mismatch for worker %d", id)
			}
		}(i)
	}
	wg.Wait()
}

// TestStreamOrderProperty checks the byte stream is preserved across
// arbitrary write sizings.
func TestStreamOrderProperty(t *testing.T) {
	f := func(seed int64, sizes []uint16) bool {
		if len(sizes) > 32 {
			sizes = sizes[:32]
		}
		n := New(fastCfg())
		srv := n.Host("s")
		l, _ := srv.Listen(":0")
		defer l.Close()
		got := make(chan []byte, 1)
		go func() {
			c, err := l.Accept()
			if err != nil {
				got <- nil
				return
			}
			b, _ := io.ReadAll(c)
			got <- b
		}()
		c, err := n.Host("c").Dial(context.Background(), l.Addr().String())
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		var sent bytes.Buffer
		for _, sz := range sizes {
			buf := make([]byte, int(sz)%1024)
			rng.Read(buf)
			sent.Write(buf)
			if _, err := c.Write(buf); err != nil {
				return false
			}
		}
		c.Close()
		return bytes.Equal(<-got, sent.Bytes())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}
