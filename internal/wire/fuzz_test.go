package wire

import (
	"bytes"
	"testing"
)

// FuzzDecode feeds arbitrary bytes to the wire decoder: it must never
// panic, never over-allocate, and anything it accepts must re-encode to a
// decodable message of the same type (decode/encode/decode consistency).
func FuzzDecode(f *testing.F) {
	// Seed with every message type's encoding.
	seeds := []Message{
		&Register{Role: RoleStage, ID: 1, JobID: 2, Weight: 1.5, Addr: "a:1"},
		&RegisterAck{ID: 1, Epoch: 2},
		&Collect{Cycle: 3, WindowMicros: 1e6},
		&CollectReply{Cycle: 3, Reports: []StageReport{{StageID: 1, JobID: 2, Demand: Rates{3, 4}, Usage: Rates{5, 6}}}},
		&CollectAggReply{Cycle: 3, AggregatorID: 9, Jobs: []JobReport{{JobID: 1, Stages: 10, Demand: Rates{1, 2}}}},
		&Enforce{Cycle: 4, Rules: []Rule{{StageID: 1, JobID: 2, Action: ActionSetLimit, Limit: Rates{7, 8}}}},
		&EnforceAck{Cycle: 4, Applied: 1},
		&Heartbeat{SentUnixMicros: 5},
		&HeartbeatAck{EchoUnixMicros: 5},
		&ErrorReply{Code: CodeOverload, Text: "x"},
		&StageList{},
		&StageListReply{Stages: []StageEntry{{ID: 1, JobID: 2, Weight: 3, Addr: "b:2"}}},
		&PeerExchange{Cycle: 1, PeerID: 2, Addr: "p:1", Jobs: []JobReport{{JobID: 1}}},
		&PeerExchangeAck{Cycle: 1, PeerID: 2},
		&Delegate{Cycle: 2, Budgets: []JobBudget{{JobID: 1, Limit: Rates{9, 10}}}},
		&Enforce{Cycle: 5, Epoch: 2, Rules: []Rule{{StageID: 1, JobID: 2, Action: ActionPause}}},
		&Collect{Cycle: 6, WindowMicros: 1e6, Epoch: 2},
		&ErrorReply{Code: CodeStaleEpoch, Text: "deposed", Epoch: 3},
		&StateSync{PrimaryID: 1, Epoch: 2, Cycle: 7, LeaseMicros: 250_000,
			Members: []MemberState{
				{Role: RoleStage, ID: 1, JobID: 2, Weight: 1, Addr: "a:1",
					Rules: []Rule{{StageID: 1, JobID: 2, Action: ActionSetLimit, Limit: Rates{3, 4}}}},
				{Role: RoleAggregator, ID: 9, Addr: "b:2",
					Stages: []StageEntry{{ID: 1, JobID: 2, Weight: 1, Addr: "a:1"}}},
			},
			Weights: []JobWeight{{JobID: 2, Weight: 1}}},
		&StateSyncAck{ID: 2, Epoch: 2},
	}
	for _, m := range seeds {
		f.Add(Encode(nil, m))
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0x00, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return // rejection is fine; panics are not
		}
		re := Encode(nil, m)
		m2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-decode of re-encoded message failed: %v", err)
		}
		if m2.Type() != m.Type() {
			t.Fatalf("type changed across round trip: %v -> %v", m.Type(), m2.Type())
		}
		// A second encode must be byte-identical (canonical encoding).
		if re2 := Encode(nil, m2); !bytes.Equal(re, re2) {
			t.Fatalf("encoding not canonical:\n%x\n%x", re, re2)
		}
	})
}

// FuzzDecoderPrimitives exercises the primitive decoders on raw input.
func FuzzDecoderPrimitives(f *testing.F) {
	f.Add([]byte{0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09})
	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(data)
		_ = d.Uint64()
		_ = d.Int64()
		_ = d.Float64()
		_ = d.Bytes16()
		_ = d.String()
		_ = d.Bool()
		_ = d.Finish()
	})
}
