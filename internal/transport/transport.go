// Package transport abstracts how sdscale control-plane components reach
// each other.
//
// Two implementations exist: simnet (an in-process simulated network used to
// reproduce the paper's experiments at 10,000-node scale on one machine) and
// tcpnet (real TCP for multi-host deployments). Everything above this layer
// — RPC, controllers, stages — is transport-agnostic.
//
// The package also provides Meter, the byte-accounting hook that feeds the
// per-controller network rows of the paper's resource-utilization tables
// (Tables II-IV).
package transport

import (
	"context"
	"errors"
	"net"
	"sync/atomic"
	"time"
)

// ErrConnLimit is returned by Dial when the dialing or target endpoint has
// reached its concurrent-connection limit. The paper observes this limit on
// Frontera nodes at 2,500 connections (§IV-A); simnet enforces it so the
// flat design's scalability cliff is reproduced by construction.
var ErrConnLimit = errors.New("transport: connection limit reached")

// Network is the minimal dial/listen surface the control plane needs.
type Network interface {
	// Listen opens a listener on addr. Address syntax is
	// implementation-defined ("host:port" for both simnet and tcpnet).
	Listen(addr string) (net.Listener, error)
	// Dial connects to addr, honoring ctx cancellation and deadline.
	Dial(ctx context.Context, addr string) (net.Conn, error)
}

// Meter accumulates transmitted and received byte counts. It is safe for
// concurrent use; controllers attach one per role and the experiment harness
// samples it to produce MB/s columns.
type Meter struct {
	tx atomic.Uint64
	rx atomic.Uint64
}

// AddTx records n transmitted bytes.
func (m *Meter) AddTx(n int) { m.tx.Add(uint64(n)) }

// AddRx records n received bytes.
func (m *Meter) AddRx(n int) { m.rx.Add(uint64(n)) }

// Tx returns total transmitted bytes.
func (m *Meter) Tx() uint64 { return m.tx.Load() }

// Rx returns total received bytes.
func (m *Meter) Rx() uint64 { return m.rx.Load() }

// Snapshot returns (tx, rx) totals at one instant.
func (m *Meter) Snapshot() (tx, rx uint64) { return m.tx.Load(), m.rx.Load() }

// MeteredConn wraps a net.Conn, charging traffic to a Meter.
type MeteredConn struct {
	net.Conn
	meter *Meter
}

// WithMeter returns c wrapped so its traffic is charged to m. A nil meter
// returns c unchanged.
func WithMeter(c net.Conn, m *Meter) net.Conn {
	if m == nil {
		return c
	}
	return &MeteredConn{Conn: c, meter: m}
}

// Read implements net.Conn.
func (c *MeteredConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n > 0 {
		c.meter.AddRx(n)
	}
	return n, err
}

// Write implements net.Conn.
func (c *MeteredConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	if n > 0 {
		c.meter.AddTx(n)
	}
	return n, err
}

// MeteredNetwork wraps a Network so every dialed connection is charged to a
// Meter. Accepted connections must be wrapped by the listener's owner (the
// RPC server does this) because listeners hand out raw conns.
type MeteredNetwork struct {
	// Network is the underlying transport.
	Network
	// Meter receives the byte accounting for dialed connections.
	Meter *Meter
}

// Dial implements Network.
func (n *MeteredNetwork) Dial(ctx context.Context, addr string) (net.Conn, error) {
	c, err := n.Network.Dial(ctx, addr)
	if err != nil {
		return nil, err
	}
	return WithMeter(c, n.Meter), nil
}

// Rate converts a byte count over an elapsed duration into MB/s (decimal
// megabytes, as the paper reports).
func Rate(bytes uint64, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(bytes) / 1e6 / elapsed.Seconds()
}
