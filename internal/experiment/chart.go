package experiment

import (
	"fmt"
	"strings"
	"time"
)

// Chart glyphs for the three control-cycle phases, matching the paper's
// stacked-bar figures.
const (
	glyphCollect = '█'
	glyphCompute = '▚'
	glyphEnforce = '░'
)

// chartRow is one bar of a latency chart.
type chartRow struct {
	label                     string
	collect, compute, enforce time.Duration
}

// renderLatencyChart draws horizontal stacked bars of per-phase latency,
// the ASCII analogue of the paper's Figures 4-6. Bars are scaled to the
// largest total; each phase's share is rounded to whole cells, so tiny
// phases (compute, typically) may not be visible — the tables carry the
// exact numbers.
func renderLatencyChart(rows []chartRow, width int) string {
	if len(rows) == 0 {
		return ""
	}
	if width <= 0 {
		width = 56
	}
	var maxTotal time.Duration
	labelWidth := 0
	for _, r := range rows {
		if t := r.collect + r.compute + r.enforce; t > maxTotal {
			maxTotal = t
		}
		if len(r.label) > labelWidth {
			labelWidth = len(r.label)
		}
	}
	if maxTotal <= 0 {
		return ""
	}

	var b strings.Builder
	for _, r := range rows {
		total := r.collect + r.compute + r.enforce
		cells := func(d time.Duration) int {
			return int(float64(d) / float64(maxTotal) * float64(width))
		}
		nCollect := cells(r.collect)
		nCompute := cells(r.compute)
		nEnforce := cells(r.enforce)
		fmt.Fprintf(&b, "  %-*s |%s%s%s %s\n",
			labelWidth, r.label,
			strings.Repeat(string(glyphCollect), nCollect),
			strings.Repeat(string(glyphCompute), nCompute),
			strings.Repeat(string(glyphEnforce), nEnforce),
			total.Round(10*time.Microsecond))
	}
	fmt.Fprintf(&b, "  %-*s  %c collect  %c compute  %c enforce\n",
		labelWidth, "", glyphCollect, glyphCompute, glyphEnforce)
	return b.String()
}

// latencyRows converts results into chart rows labeled by fn.
func latencyRows(results []Result, label func(Result) string) []chartRow {
	rows := make([]chartRow, len(results))
	for i, r := range results {
		rows[i] = chartRow{
			label:   label(r),
			collect: r.Latency.Collect.Mean,
			compute: r.Latency.Compute.Mean,
			enforce: r.Latency.Enforce.Mean,
		}
	}
	return rows
}
