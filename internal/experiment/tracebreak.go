package experiment

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"

	"github.com/dsrhaslab/sdscale/internal/cluster"
	"github.com/dsrhaslab/sdscale/internal/controller"
	"github.com/dsrhaslab/sdscale/internal/telemetry"
	"github.com/dsrhaslab/sdscale/internal/trace"
)

// TraceBreakNodes are the flat scales the cycle-time decomposition runs at:
// the paper's small, medium, and maximum flat deployments.
var TraceBreakNodes = [3]int{1000, 5000, 10000}

// TraceBreakHierNodes is the scale the hierarchical decomposition runs at.
const TraceBreakHierNodes = 10000

// TraceBreakRow is one configuration's span-derived cycle decomposition.
type TraceBreakRow struct {
	// Name labels the configuration (e.g. "flat-1000").
	Name string
	// Topology, Mode, and Nodes identify the configuration.
	Topology cluster.Topology
	Mode     controller.FanOutMode
	Nodes    int
	// Cycles is the measured cycle count; Wall their summed wall time.
	Cycles uint64
	Wall   time.Duration
	// Calls counts controller-side child RPCs (both tiers for the
	// hierarchy); Errors the failed ones.
	Calls, Errors uint64
	// Marshal, Dispatch, and Wait decompose the controller side of every
	// call: frame encoding, connection writes, and time in flight (wire +
	// server). Sums across calls — Wait exceeds Wall when calls overlap.
	Marshal, Dispatch, Wait time.Duration
	// ServerCalls, ServerQueue, and ServerHandler are the stage-side view:
	// request count, summed queue wait, and summed handler time.
	ServerCalls                uint64
	ServerQueue, ServerHandler time.Duration
	// SharedSends and SharedEncodes come from the controllers'
	// PipelineStats: broadcast calls issued from marshal-once shared frames
	// and the body encodes those frames actually performed. Their ratio is
	// the marshal fan-in — 10,000 children per encode means the broadcast
	// phases marshal once per cycle instead of once per child.
	SharedSends, SharedEncodes uint64
	// Incremental marks the event-driven configuration; DirtyChildren,
	// SuppressedCollects, and SuppressedEnforces are its dirty-set
	// telemetry (the per-child calls the incremental cycles never made —
	// which is why its Calls floor does not apply).
	Incremental                            bool
	DirtyChildren                          int64
	SuppressedCollects, SuppressedEnforces uint64
	// ComputeWorkers is the worker count the controller's last compute
	// phase sharded rule emission across (1 = the serial kernel; 0 when the
	// configuration never ran the flat kernel). Arena mirrors the global
	// controller's cycle-arena counters: reuses tracking takes after warmup
	// is the allocation-free steady state the arena exists for.
	ComputeWorkers int64
	Arena          telemetry.ArenaSnapshot
}

// ArenaReuseFrac is the fraction of slab draws served from retained
// capacity. Zero when the configuration recorded no arena activity.
func (r TraceBreakRow) ArenaReuseFrac() float64 {
	if r.Arena.Takes == 0 {
		return 0
	}
	return float64(r.Arena.Reuses) / float64(r.Arena.Takes)
}

// SharedFanIn is the broadcast marshal fan-in: shared-frame sends per body
// encode. Zero when the configuration issued no shared broadcasts.
func (r TraceBreakRow) SharedFanIn() float64 {
	if r.SharedEncodes == 0 {
		return 0
	}
	return float64(r.SharedSends) / float64(r.SharedEncodes)
}

// MeanCycle is the mean measured cycle time.
func (r TraceBreakRow) MeanCycle() time.Duration {
	if r.Cycles == 0 {
		return 0
	}
	return r.Wall / time.Duration(r.Cycles)
}

// MarshalFrac and DispatchFrac are the fractions of cycle wall time the
// controller spent encoding frames and writing connections (these run on
// the cycle's critical path in both fan-out modes). WaitFactor is summed
// in-flight time over wall time: values above 1 mean calls overlapped —
// the signature of pipelined dispatch.
func (r TraceBreakRow) MarshalFrac() float64  { return frac(r.Marshal, r.Wall) }
func (r TraceBreakRow) DispatchFrac() float64 { return frac(r.Dispatch, r.Wall) }
func (r TraceBreakRow) WaitFactor() float64   { return frac(r.Wait, r.Wall) }

func frac(part, whole time.Duration) float64 {
	if whole <= 0 {
		return 0
	}
	return float64(part) / float64(whole)
}

// TraceBreakResult holds every configuration's decomposition.
type TraceBreakResult struct {
	Rows []TraceBreakRow
}

// TraceBreak measures where control-cycle time goes — marshal vs. dispatch
// vs. wait — from per-call spans, across the flat design at 1k/5k/10k nodes
// and the hierarchy at 10k, in both fan-out modes. Connection limits are
// lifted (the connlimit experiment studies those); everything else uses the
// default network model, whose deterministic per-message and per-byte costs
// make the split reproducible.
func TraceBreak(ctx context.Context, o Options) (TraceBreakResult, error) {
	o = o.withDefaults()

	var debug *trace.DebugServer
	if o.Debug != "" {
		var err error
		debug, err = trace.StartDebug(trace.DebugOptions{Addr: o.Debug})
		if err != nil {
			return TraceBreakResult{}, fmt.Errorf("experiment tracebreak: debug endpoint: %w", err)
		}
		defer debug.Close()
		o.printf("debug endpoint on http://%s (/metrics, /debug/pprof, /debug/trace; up for this run)\n\n", debug.Addr())
	}

	type config struct {
		topo        cluster.Topology
		nodes       int
		mode        controller.FanOutMode
		incremental bool
	}
	var configs []config
	for _, n := range TraceBreakNodes {
		for _, m := range []controller.FanOutMode{controller.FanOutPipelined, controller.FanOutBlocking} {
			configs = append(configs, config{cluster.Flat, o.scaled(n), m, false})
		}
	}
	for _, m := range []controller.FanOutMode{controller.FanOutPipelined, controller.FanOutBlocking} {
		configs = append(configs, config{cluster.Hierarchical, o.scaled(TraceBreakHierNodes), m, false})
	}
	// The event-driven mode at the flat maximum: under the stress workload
	// demand never moves, so its spans show what the dirty-set scan leaves
	// of the cycle once the suppressed calls disappear.
	configs = append(configs, config{cluster.Flat, o.scaled(TraceBreakNodes[2]), controller.FanOutPipelined, true})

	var res TraceBreakResult
	for _, cf := range configs {
		row, err := o.runTraceBreak(ctx, cf.topo, cf.nodes, cf.mode, cf.incremental, debug)
		if err != nil {
			return res, fmt.Errorf("experiment tracebreak: %s-%d/%v: %w", cf.topo, cf.nodes, cf.mode, err)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// runTraceBreak builds one traced deployment, measures it, and folds its
// tracers' totals into a decomposition row.
func (o Options) runTraceBreak(ctx context.Context, topo cluster.Topology, nodes int, mode controller.FanOutMode, incremental bool, debug *trace.DebugServer) (TraceBreakRow, error) {
	net := *o.Net
	// The paper's 2,500-connection host limit would refuse a flat 10k fan-in;
	// lifting it isolates the marshal/dispatch/wait split from connection
	// starvation, which the connlimit experiment studies on its own.
	net.MaxConnsPerHost = -1
	c, err := cluster.Build(cluster.Config{
		Topology:    topo,
		Stages:      nodes,
		Jobs:        o.Jobs,
		Net:         net,
		FanOutMode:  mode,
		MaxCodec:    o.MaxCodec,
		Incremental: incremental,
		Tracing:     true,
		// Full-fidelity sampling: the decomposition should be an exact sum
		// over every call, not a scaled estimate, and the experiment accepts
		// the tracing cost it is there to expose.
		TraceSample: 1,
	})
	if err != nil {
		return TraceBreakRow{}, err
	}
	defer c.Close()

	name := fmt.Sprintf("%s-%d", topo, nodes)
	if incremental {
		name += "-incr"
	}
	if debug != nil {
		prefix := fmt.Sprintf("%s-%s/", name, mode)
		c.Trace.Each(func(tn string, tr *trace.Tracer) { debug.AddTracer(prefix+tn, tr) })
		if c.Global != nil {
			// Fixed name: each configuration replaces the last, keeping
			// /metrics free of duplicate controller series.
			debug.AddMetrics("controller", c.Global)
		}
	}

	runtime.GC()
	for i := 0; i < o.Warmup; i++ {
		if _, err := c.RunControlCycle(ctx); err != nil {
			return TraceBreakRow{}, fmt.Errorf("warmup: %w", err)
		}
	}
	c.Recorder().Reset()
	c.Trace.Each(func(_ string, tr *trace.Tracer) { tr.Reset() })

	row := TraceBreakRow{Name: name, Topology: topo, Mode: mode, Nodes: nodes, Incremental: incremental}
	start := time.Now()
	for {
		b, err := c.RunControlCycle(ctx)
		if err != nil {
			return row, err
		}
		row.Cycles++
		row.Wall += b.Total
		elapsed := time.Since(start)
		if elapsed >= o.MaxDuration ||
			(elapsed >= o.MinDuration && row.Cycles >= uint64(o.MinCycles)) {
			break
		}
	}

	// Controller-side spans: the global controller's calls plus, for the
	// hierarchy, every aggregator's calls to its stages.
	fold := func(tr *trace.Tracer) {
		if tr == nil {
			return
		}
		tot := tr.Totals()
		row.Calls += tot.ClientCalls
		row.Errors += tot.ClientErrors
		row.Marshal += tot.ClientMarshal
		row.Dispatch += tot.ClientWrite
		row.Wait += tot.ClientDur - tot.ClientMarshal - tot.ClientWrite
	}
	fold(c.Trace.Global)
	for _, tr := range c.Trace.Mid {
		fold(tr)
	}
	// Shared-frame telemetry from the controllers' pipeline stats. The
	// counters are cumulative (they include warmup), which is fine for a
	// fan-in ratio.
	if c.Global != nil {
		p := c.Global.Stats().Pipeline
		row.SharedSends += p.SharedSends
		row.SharedEncodes += p.SharedEncodes
		row.DirtyChildren = p.DirtyChildren
		row.SuppressedCollects += p.SuppressedCollects
		row.SuppressedEnforces += p.SuppressedEnforces
		row.ComputeWorkers = p.ComputeWorkers
		row.Arena = p.Arena
	}
	for _, a := range c.Aggregators {
		p := a.Stats().Pipeline
		row.SharedSends += p.SharedSends
		row.SharedEncodes += p.SharedEncodes
		row.SuppressedCollects += p.SuppressedCollects
		row.SuppressedEnforces += p.SuppressedEnforces
	}
	if tr := c.Trace.Stages; tr != nil {
		tot := tr.Totals()
		row.ServerCalls = tot.ServerCalls
		row.ServerQueue = tot.ServerQueue
		row.ServerHandler = tot.ServerHandler
	}
	return row, nil
}

// PrintTraceBreak renders the decomposition table.
func PrintTraceBreak(o Options, res TraceBreakResult) {
	o = o.withDefaults()
	o.printf("control-cycle time decomposition from per-call spans (marshal and dispatch\n")
	o.printf("run on the cycle's critical path; wait× is summed in-flight time over cycle\n")
	o.printf("wall time — above 1 means calls overlap, the point of pipelined dispatch;\n")
	o.printf("bcast×: broadcast sends per body encode — marshal-once fan-in of the\n")
	o.printf("shared-frame phases, the child count when every broadcast shares one encode)\n")
	o.printf("%-20s %-10s %7s %10s %9s %10s %7s %11s %11s %8s\n",
		"config", "dispatch", "cycles", "cycle", "marshal%", "dispatch%", "wait×", "srvq/call", "srvh/call", "bcast×")
	for _, r := range res.Rows {
		var q, h time.Duration
		if r.ServerCalls > 0 {
			q = r.ServerQueue / time.Duration(r.ServerCalls)
			h = r.ServerHandler / time.Duration(r.ServerCalls)
		}
		o.printf("%-20s %-10s %7d %8sms %8.2f%% %9.2f%% %7.1f %9sµs %9sµs %8.0f\n",
			r.Name, r.Mode, r.Cycles, ms(r.MeanCycle()),
			100*r.MarshalFrac(), 100*r.DispatchFrac(), r.WaitFactor(),
			us(q), us(h), r.SharedFanIn())
		if r.Incremental {
			o.printf("%-20s dirty-set: %d dirty last cycle, %d collects and %d enforces suppressed across the run\n",
				"", r.DirtyChildren, r.SuppressedCollects, r.SuppressedEnforces)
		}
		if r.Arena.Generation > 0 {
			o.printf("%-20s cycle-arena: gen %d, %d takes (%.0f%% reused, %d grows); compute workers %d\n",
				"", r.Arena.Generation, r.Arena.Takes, 100*r.ArenaReuseFrac(), r.Arena.Grows, r.ComputeWorkers)
		}
	}
	o.printf("\n")
}

// us renders a duration in microseconds with decimals.
func us(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d)/float64(time.Microsecond))
}

// CheckTraceBreak asserts the decomposition's structural invariants at any
// scale: every configuration completed cycles, traced the full fan-out on
// both sides, kept its sub-timings consistent, and the pipelined mode
// overlapped at least as much waiting as the blocking pool.
func CheckTraceBreak(res TraceBreakResult) error {
	if len(res.Rows) == 0 {
		return errors.New("tracebreak: no rows")
	}
	waitx := map[string]map[controller.FanOutMode]float64{}
	for _, r := range res.Rows {
		if r.Cycles == 0 {
			return fmt.Errorf("tracebreak %s/%v: no cycles", r.Name, r.Mode)
		}
		if r.Incremental {
			// The event-driven configuration suppresses the very calls the
			// floors below count; its claim is that the suppression telemetry
			// actually moved.
			if r.SuppressedCollects == 0 {
				return fmt.Errorf("tracebreak %s/%v: incremental run suppressed no collects", r.Name, r.Mode)
			}
			continue
		}
		// Collect and enforce each fan out to every stage (the hierarchy
		// adds the global→aggregator tier on top).
		min := 2 * r.Cycles * uint64(r.Nodes)
		if r.Calls < min {
			return fmt.Errorf("tracebreak %s/%v: traced %d controller calls, want >= %d", r.Name, r.Mode, r.Calls, min)
		}
		if r.Errors > 0 {
			return fmt.Errorf("tracebreak %s/%v: %d child calls failed", r.Name, r.Mode, r.Errors)
		}
		if r.Wait < 0 {
			return fmt.Errorf("tracebreak %s/%v: negative wait (marshal %v + dispatch %v exceed call time)", r.Name, r.Mode, r.Marshal, r.Dispatch)
		}
		if r.ServerCalls < min {
			return fmt.Errorf("tracebreak %s/%v: stages traced %d requests, want >= %d", r.Name, r.Mode, r.ServerCalls, min)
		}
		// Every configuration broadcasts at least its collect phase through
		// shared frames; a fan-in near 1 would mean each send re-encoded the
		// body and the marshal-once path is broken.
		if r.SharedSends == 0 {
			return fmt.Errorf("tracebreak %s/%v: no shared-frame broadcasts recorded", r.Name, r.Mode)
		}
		if f := r.SharedFanIn(); f < 2 {
			return fmt.Errorf("tracebreak %s/%v: shared-frame fan-in %.1f — broadcasts are not sharing encodes", r.Name, r.Mode, f)
		}
		// The cycle arena must be live and, after warmup, recycling: a zero
		// reuse count means every cycle re-grew its slabs from scratch.
		if r.Arena.Generation == 0 || r.Arena.Takes == 0 {
			return fmt.Errorf("tracebreak %s/%v: no cycle-arena activity recorded", r.Name, r.Mode)
		}
		if r.Arena.Reuses == 0 {
			return fmt.Errorf("tracebreak %s/%v: cycle arena never reused a slab across %d generations", r.Name, r.Mode, r.Arena.Generation)
		}
		if r.Topology == cluster.Flat && r.ComputeWorkers < 1 {
			return fmt.Errorf("tracebreak %s/%v: flat compute kernel recorded %d workers", r.Name, r.Mode, r.ComputeWorkers)
		}
		if waitx[r.Name] == nil {
			waitx[r.Name] = map[controller.FanOutMode]float64{}
		}
		waitx[r.Name][r.Mode] = r.WaitFactor()
	}
	for name, modes := range waitx {
		p, b := modes[controller.FanOutPipelined], modes[controller.FanOutBlocking]
		// Allow slack: at tiny test scales both modes fit inside the
		// blocking pool's bound and overlap equally.
		if p < 0.9*b {
			return fmt.Errorf("tracebreak %s: pipelined wait overlap %.1fx below blocking %.1fx — not pipelining", name, p, b)
		}
	}
	return nil
}
