package rpc

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"github.com/dsrhaslab/sdscale/internal/monitor"
	"github.com/dsrhaslab/sdscale/internal/transport"
	"github.com/dsrhaslab/sdscale/internal/wire"
)

// ErrClientClosed is returned by calls on a closed client.
var ErrClientClosed = errors.New("rpc: client closed")

// Client is one end of a multiplexed RPC connection. It is safe for
// concurrent use: many calls may be in flight at once over the single
// underlying connection.
type Client struct {
	conn net.Conn
	cpu  *monitor.CPUMeter // optional; charged with marshal/write time

	wmu  sync.Mutex // serializes frame writes
	wbuf []byte

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan result
	err     error // set once the read loop dies
	closed  bool

	late atomic.Uint64 // responses that arrived after their call was abandoned

	done chan struct{}
}

type result struct {
	msg wire.Message
	err error
}

// DialOptions configures Dial.
type DialOptions struct {
	// Meter, if non-nil, is charged with the connection's traffic.
	Meter *transport.Meter
	// CPU, if non-nil, is charged with local marshal and write time, the
	// client-side share of per-message processing cost.
	CPU *monitor.CPUMeter
}

// Dial connects to an RPC server at addr over network.
func Dial(ctx context.Context, network transport.Network, addr string, opts DialOptions) (*Client, error) {
	conn, err := network.Dial(ctx, addr)
	if err != nil {
		return nil, err
	}
	c := NewClient(transport.WithMeter(conn, opts.Meter))
	c.cpu = opts.CPU
	return c, nil
}

// NewClient wraps an established connection as an RPC client and starts its
// read loop. The client takes ownership of conn.
func NewClient(conn net.Conn) *Client {
	c := &Client{
		conn:    conn,
		pending: make(map[uint64]chan result),
		done:    make(chan struct{}),
	}
	go c.readLoop()
	return c
}

// RemoteAddr returns the server's address.
func (c *Client) RemoteAddr() net.Addr { return c.conn.RemoteAddr() }

// Err reports why the client is unusable: the read-loop death error,
// ErrClientClosed after Close, or nil while the connection is healthy.
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	if c.closed {
		return ErrClientClosed
	}
	return nil
}

// LateResponses returns the number of responses that arrived after their
// call had already been abandoned (via context) and were dropped.
func (c *Client) LateResponses() uint64 { return c.late.Load() }

// readLoop dispatches responses to pending calls until the connection dies.
func (c *Client) readLoop() {
	var buf []byte
	for {
		var (
			h   frameHeader
			m   wire.Message
			err error
		)
		h, m, buf, err = readFrame(c.conn, buf)
		if err != nil {
			c.fail(fmt.Errorf("rpc: connection lost: %w", err))
			return
		}
		if h.kind != kindResponse {
			continue // clients only issue requests; ignore anything else
		}
		c.mu.Lock()
		ch := c.pending[h.id]
		delete(c.pending, h.id)
		c.mu.Unlock()
		if ch != nil {
			ch <- result{msg: m}
		} else {
			// The call was abandoned via its context; the response raced
			// with (or beat) the cancel frame and must be dropped.
			c.late.Add(1)
		}
	}
}

// fail poisons the client: all pending and future calls return err.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	pending := c.pending
	c.pending = make(map[uint64]chan result)
	c.mu.Unlock()
	for _, ch := range pending {
		ch <- result{err: err}
	}
}

// Call sends req and waits for the matching response, honoring ctx. A
// remote handler failure is returned as *wire.ErrorReply.
func (c *Client) Call(ctx context.Context, req wire.Message) (wire.Message, error) {
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClientClosed
	}
	c.nextID++
	id := c.nextID
	ch := make(chan result, 1)
	c.pending[id] = ch
	c.mu.Unlock()

	if err := c.send(frameHeader{id: id, kind: kindRequest}, req); err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return nil, err
	}

	select {
	case r := <-ch:
		if r.err != nil {
			return nil, r.err
		}
		if er, ok := r.msg.(*wire.ErrorReply); ok {
			return nil, er
		}
		return r.msg, nil
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, id)
		live := c.err == nil && !c.closed
		c.mu.Unlock()
		if live {
			// Best effort: tell the server not to bother. If the write
			// fails the connection is dying anyway.
			c.sendCancel(id)
		}
		return nil, ctx.Err()
	case <-c.done:
		return nil, ErrClientClosed
	}
}

// sendCancel writes a body-less cancel frame for id, serialized against
// other senders. Errors are ignored: cancellation is advisory.
func (c *Client) sendCancel(id uint64) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.wbuf = appendCancelFrame(c.wbuf[:0], id)
	c.conn.Write(c.wbuf)
}

// send writes one frame, serialized against other senders.
func (c *Client) send(h frameHeader, m wire.Message) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.cpu != nil {
		defer c.cpu.Track()()
	}
	c.wbuf = appendFrame(c.wbuf[:0], h, m)
	_, err := c.conn.Write(c.wbuf)
	return err
}

// Close tears down the connection; pending calls fail.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	close(c.done)
	err := c.conn.Close()
	c.fail(ErrClientClosed)
	return err
}

// Scatter invokes fn for indexes [0, n) using at most par concurrent
// workers, in roughly increasing index order. It is the fan-out primitive
// used by the collect and enforce phases: par models the bounded handler
// pool of the paper's controller (gRPC server threads), which is what makes
// per-child work accumulate linearly with the number of children.
func Scatter(n, par int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if par <= 0 {
		par = 1
	}
	if par > n {
		par = n
	}
	if par == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	wg.Add(par)
	for w := 0; w < par; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
