// Package jobsim drives enforcing data-plane stages with realistic HPC job
// I/O patterns.
//
// The paper motivates SDS control with data-centric HPC workloads — long
// running jobs issuing "consecutive data and metadata accesses to the PFS"
// (§I). jobsim reproduces the two canonical shapes:
//
//   - checkpoint-style jobs: compute for a while, then burst-write large
//     files (one metadata open/close pair around many data operations);
//   - metadata-intensive jobs: create swarms of small files, where opens
//     and closes dominate — the pattern Cheferd targets.
//
// Jobs run as a set of parallel ranks (like MPI processes), all pushing
// through the job's data-plane stage, so the control plane's per-class
// rate limits shape exactly what reaches the PFS.
package jobsim

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dsrhaslab/sdscale/internal/stage"
	"github.com/dsrhaslab/sdscale/internal/wire"
)

// Pattern describes a job's I/O behaviour.
type Pattern struct {
	// Ranks is the number of parallel workers (MPI-rank analogue). Zero
	// selects 4.
	Ranks int
	// ComputeTime is the pause between I/O bursts, per rank. Zero means
	// the job is I/O-bound and bursts back-to-back.
	ComputeTime time.Duration
	// FilesPerBurst is how many files each burst touches. Zero selects 1.
	FilesPerBurst int
	// OpsPerFile is the data operations per file between its open and
	// close. Zero makes the job purely metadata-bound (create/close).
	OpsPerFile int
}

func (p Pattern) withDefaults() Pattern {
	if p.Ranks <= 0 {
		p.Ranks = 4
	}
	if p.FilesPerBurst <= 0 {
		p.FilesPerBurst = 1
	}
	return p
}

// Checkpoint returns the classic checkpoint/restart pattern: compute, then
// burst ops data operations into one file.
func Checkpoint(compute time.Duration, ops int) Pattern {
	return Pattern{Ranks: 4, ComputeTime: compute, FilesPerBurst: 1, OpsPerFile: ops}
}

// MetadataHeavy returns a file-swarm pattern: files small files per burst
// with a single data operation each, so metadata ops dominate 2:1.
func MetadataHeavy(files int) Pattern {
	return Pattern{Ranks: 4, FilesPerBurst: files, OpsPerFile: 1}
}

// Stats is a snapshot of a job's progress.
type Stats struct {
	// Bursts is the number of completed I/O bursts across all ranks.
	Bursts uint64
	// DataOps and MetaOps count completed operations by class.
	DataOps, MetaOps uint64
}

// Job is a running simulated job.
type Job struct {
	pattern Pattern
	stage   *stage.Enforcing
	cancel  context.CancelFunc
	wg      sync.WaitGroup

	bursts  atomic.Uint64
	dataOps atomic.Uint64
	metaOps atomic.Uint64
}

// Start launches the job's ranks against st. Stop the job to release them.
func Start(ctx context.Context, st *stage.Enforcing, p Pattern) *Job {
	p = p.withDefaults()
	jctx, cancel := context.WithCancel(ctx)
	j := &Job{pattern: p, stage: st, cancel: cancel}
	for r := 0; r < p.Ranks; r++ {
		j.wg.Add(1)
		go j.rank(jctx)
	}
	return j
}

// rank runs one worker's compute/burst loop.
func (j *Job) rank(ctx context.Context) {
	defer j.wg.Done()
	for ctx.Err() == nil {
		if j.pattern.ComputeTime > 0 {
			t := time.NewTimer(j.pattern.ComputeTime)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return
			}
		}
		for f := 0; f < j.pattern.FilesPerBurst; f++ {
			// open
			if j.stage.Submit(ctx, wire.ClassMeta) != nil {
				return
			}
			j.metaOps.Add(1)
			for op := 0; op < j.pattern.OpsPerFile; op++ {
				if j.stage.Submit(ctx, wire.ClassData) != nil {
					return
				}
				j.dataOps.Add(1)
			}
			// close
			if j.stage.Submit(ctx, wire.ClassMeta) != nil {
				return
			}
			j.metaOps.Add(1)
		}
		j.bursts.Add(1)
	}
}

// Stats returns the job's progress so far.
func (j *Job) Stats() Stats {
	return Stats{
		Bursts:  j.bursts.Load(),
		DataOps: j.dataOps.Load(),
		MetaOps: j.metaOps.Load(),
	}
}

// Stop ends the job and waits for its ranks to exit.
func (j *Job) Stop() Stats {
	j.cancel()
	j.wg.Wait()
	return j.Stats()
}
