package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Prometheus text-exposition helpers shared by every component that renders
// metrics for the debug endpoint. Only the subset of the format the repo
// needs: counters, gauges, and summary-style quantile series derived from
// Histogram.

// PromCounter writes one counter sample. labels alternate key, value.
func PromCounter(w io.Writer, name string, value uint64, labels ...string) error {
	_, err := fmt.Fprintf(w, "%s%s %d\n", name, promLabels(labels), value)
	return err
}

// PromGauge writes one gauge sample with a float value.
func PromGauge(w io.Writer, name string, value float64, labels ...string) error {
	_, err := fmt.Fprintf(w, "%s%s %g\n", name, promLabels(labels), value)
	return err
}

// PromHistogram renders a Histogram as a summary: p50/p95/p99 quantile
// series (in seconds, per Prometheus convention) plus _sum-less _count and
// _mean helpers. labels alternate key, value and are applied to every
// series.
func PromHistogram(w io.Writer, name string, h *Histogram, labels ...string) error {
	count := h.Count()
	if _, err := fmt.Fprintf(w, "%s_count%s %d\n", name, promLabels(labels), count); err != nil {
		return err
	}
	if count == 0 {
		return nil
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		ql := append(append([]string(nil), labels...), "quantile", fmt.Sprintf("%g", q))
		if _, err := fmt.Fprintf(w, "%s_seconds%s %g\n", name, promLabels(ql), h.Quantile(q).Seconds()); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s_mean_seconds%s %g\n", name, promLabels(labels), h.Mean().Seconds())
	return err
}

// PromFaults renders a FaultCounters set under the given metric prefix.
func PromFaults(w io.Writer, prefix string, f *FaultCounters, labels ...string) error {
	s := f.Summarize()
	counters := []struct {
		name  string
		value uint64
	}{
		{"quarantines_total", s.Quarantines},
		{"readmissions_total", s.Readmissions},
		{"degraded_cycles_total", s.DegradedCycles},
		{"probes_total", s.Probes},
		{"probe_failures_total", s.ProbeFailures},
		{"evictions_total", s.Evictions},
		{"stale_reports_used_total", s.StaleReportsUsed},
		{"stale_reports_dropped_total", s.StaleReportsDropped},
		{"promotions_total", s.Promotions},
		{"step_downs_total", s.StepDowns},
		{"fenced_calls_total", s.FencedCalls},
		{"reregistrations_total", s.ReRegistrations},
		{"defaulted_leases_total", s.DefaultedLeases},
		{"elections_total", s.Elections},
		{"votes_granted_total", s.VotesGranted},
		{"votes_denied_total", s.VotesDenied},
	}
	for _, c := range counters {
		if err := PromCounter(w, prefix+"_"+c.name, c.value, labels...); err != nil {
			return err
		}
	}
	if err := PromHistogram(w, prefix+"_stale_age", f.StaleAge(), labels...); err != nil {
		return err
	}
	return PromHistogram(w, prefix+"_control_gap", f.ControlGap(), labels...)
}

// promLabels renders alternating key, value pairs as {k="v",...}, sorted by
// key for deterministic output. An odd trailing key is dropped.
func promLabels(kv []string) string {
	if len(kv) < 2 {
		return ""
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].k < pairs[b].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(promEscape(p.v))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

func promEscape(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}
