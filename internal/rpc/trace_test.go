package rpc

import (
	"context"
	"testing"
	"time"

	"github.com/dsrhaslab/sdscale/internal/trace"
	"github.com/dsrhaslab/sdscale/internal/transport/simnet"
	"github.com/dsrhaslab/sdscale/internal/wire"
)

// tracedSetup builds a simnet with the given config, a traced server, and a
// traced client with span tag childTag.
func tracedSetup(t *testing.T, cfg simnet.Config, childTag uint64) (*trace.Tracer, *trace.Tracer, *Client) {
	t.Helper()
	clientTr := trace.New(1024)
	serverTr := trace.New(1024)
	n := simnet.New(cfg)
	srv, err := Serve(n.Host("server"), ":0", &echoHandler{}, ServerOptions{Tracer: serverTr})
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	cli, err := Dial(context.Background(), n.Host("client"), srv.Addr().String(),
		DialOptions{Tracer: clientTr, SpanTag: childTag})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { cli.Close() })
	return clientTr, serverTr, cli
}

// waitSpans polls until tr holds at least n spans of the given kind (spans
// are recorded on read-loop/handler goroutines, racing the caller's return).
func waitSpans(t *testing.T, tr *trace.Tracer, kind trace.Kind, n int) []trace.Span {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		var got []trace.Span
		for _, s := range tr.Snapshot() {
			if s.Kind == kind {
				got = append(got, s)
			}
		}
		if len(got) >= n {
			return got
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d %v spans, have %d", n, kind, len(got))
		}
		time.Sleep(time.Millisecond)
	}
}

func TestTracedCallSpans(t *testing.T) {
	clientTr, serverTr, cli := tracedSetup(t, simnet.Config{PropDelay: -1}, 42)
	clientTr.SetContext(7, 3, 1, trace.PhaseCollect)

	if _, err := cli.Call(context.Background(), &wire.Collect{Cycle: 7}); err != nil {
		t.Fatalf("Call: %v", err)
	}

	cs := waitSpans(t, clientTr, trace.KindCall, 1)[0]
	if cs.Tag != 42 || cs.Cycle != 7 || cs.Epoch != 3 || cs.Mode != 1 || cs.Phase != trace.PhaseCollect {
		t.Fatalf("client span context: %+v", cs)
	}
	if cs.Err() || cs.Abandoned() {
		t.Fatalf("client span flagged: %+v", cs)
	}
	if cs.Dur <= 0 || cs.Dur < cs.PartA+cs.PartB {
		t.Fatalf("client span timings inconsistent: %+v", cs)
	}

	ss := waitSpans(t, serverTr, trace.KindServer, 1)[0]
	// The server tags the peer's remote address; the client's local address
	// is the same endpoint, correlating the two spans.
	if want := trace.AddrTag(cli.LocalAddr().String()); ss.Tag != want {
		t.Fatalf("server span tag %d, want %d", ss.Tag, want)
	}
	if ss.Call != cs.Call {
		t.Fatalf("frame id mismatch: client %d, server %d", cs.Call, ss.Call)
	}
	if ss.Dur < ss.PartA+ss.PartB {
		t.Fatalf("server span timings inconsistent: %+v", ss)
	}
}

// TestTracedWireSplit checks that simnet's deterministic latency shows up as
// in-flight time (client dur minus local work minus server busy time), not
// as server queue or handler time: with PropDelay = 20ms and an idle
// connection, the client span's in-flight share must cover the two one-way
// hops while the server's queue wait stays far below one hop.
func TestTracedWireSplit(t *testing.T) {
	const hop = 20 * time.Millisecond
	clientTr, serverTr, cli := tracedSetup(t, simnet.Config{PropDelay: hop}, 1)

	if _, err := cli.Call(context.Background(), &wire.Heartbeat{SentUnixMicros: 1}); err != nil {
		t.Fatalf("Call: %v", err)
	}

	cs := waitSpans(t, clientTr, trace.KindCall, 1)[0]
	ss := waitSpans(t, serverTr, trace.KindServer, 1)[0]

	inFlight := cs.Dur - cs.PartA - cs.PartB - ss.Dur
	if inFlight < 2*hop-hop/2 {
		t.Fatalf("in-flight %v, want >= ~%v (two %v hops)\nclient %+v\nserver %+v",
			inFlight, 2*hop, hop, cs, ss)
	}
	if ss.PartA > hop/2 {
		t.Fatalf("server queue wait %v absorbed wire latency (hop %v)", ss.PartA, hop)
	}

	tot := clientTr.Totals()
	if tot.ClientCalls != 1 || tot.ClientDur != cs.Dur {
		t.Fatalf("client totals: %+v", tot)
	}
	if st := serverTr.Totals(); st.ServerCalls != 1 || st.ServerQueue != ss.PartA {
		t.Fatalf("server totals: %+v", st)
	}
}

// TestTracedQueueSplit checks the queue measurement: two pipelined requests
// on one connection are handled in order, so with a slow handler the second
// request's queue wait covers the first's handler time.
func TestTracedQueueSplit(t *testing.T) {
	const proc = 10 * time.Millisecond
	serverTr := trace.New(1024)
	n := simnet.New(simnet.Config{PropDelay: -1})
	slow := HandlerFunc(func(peer *Peer, req wire.Message) (wire.Message, error) {
		time.Sleep(proc)
		return &wire.CollectReply{}, nil
	})
	srv, err := Serve(n.Host("server"), ":0", slow, ServerOptions{Tracer: serverTr})
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()
	cli, err := Dial(context.Background(), n.Host("client"), srv.Addr().String(), DialOptions{})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cli.Close()

	ctx := context.Background()
	c1 := cli.Go(ctx, &wire.Collect{Cycle: 1})
	c2 := cli.Go(ctx, &wire.Collect{Cycle: 2})
	if _, err := c1.Wait(ctx); err != nil {
		t.Fatalf("call 1: %v", err)
	}
	if _, err := c2.Wait(ctx); err != nil {
		t.Fatalf("call 2: %v", err)
	}

	spans := waitSpans(t, serverTr, trace.KindServer, 2)
	first, second := spans[0], spans[1]
	if second.PartA < proc/2 {
		t.Fatalf("second request queue wait %v, want >= ~%v (behind a %v handler)\nfirst %+v\nsecond %+v",
			second.PartA, proc, proc, first, second)
	}
	if first.PartB < proc/2 || second.PartB < proc/2 {
		t.Fatalf("handler times %v / %v, want >= ~%v", first.PartB, second.PartB, proc)
	}
}

func TestTracedAbandonedCall(t *testing.T) {
	clientTr := trace.New(1024)
	n := simnet.New(simnet.Config{PropDelay: -1})
	stall := make(chan struct{})
	slow := HandlerFunc(func(peer *Peer, req wire.Message) (wire.Message, error) {
		<-stall
		return &wire.CollectReply{}, nil
	})
	srv, err := Serve(n.Host("server"), ":0", slow, ServerOptions{})
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()
	defer close(stall)
	cli, err := Dial(context.Background(), n.Host("client"), srv.Addr().String(),
		DialOptions{Tracer: clientTr, SpanTag: 9})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cli.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := cli.Call(ctx, &wire.Collect{Cycle: 1}); err == nil {
		t.Fatal("call against stalled handler succeeded")
	}

	s := waitSpans(t, clientTr, trace.KindCall, 1)[0]
	if !s.Abandoned() || !s.Err() {
		t.Fatalf("abandoned span flags: %+v", s)
	}
	if s.Tag != 9 {
		t.Fatalf("abandoned span tag: %+v", s)
	}
	if got := clientTr.Totals(); got.Abandoned != 1 || got.ClientErrors != 1 {
		t.Fatalf("totals: %+v", got)
	}
}

// TestTracedReconnectingClient checks DialOptions tracing survives redials.
func TestTracedReconnectingClient(t *testing.T) {
	clientTr := trace.New(1024)
	n := simnet.New(simnet.Config{PropDelay: -1})
	srv, err := Serve(n.Host("server"), ":0", &echoHandler{}, ServerOptions{})
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()

	rc, err := DialReconnecting(context.Background(), n.Host("client"), srv.Addr().String(),
		DialOptions{Tracer: clientTr, SpanTag: 5}, ReconnectPolicy{})
	if err != nil {
		t.Fatalf("DialReconnecting: %v", err)
	}
	defer rc.Close()

	if _, err := rc.Call(context.Background(), &wire.Heartbeat{SentUnixMicros: 1}); err != nil {
		t.Fatalf("Call: %v", err)
	}
	s := waitSpans(t, clientTr, trace.KindCall, 1)[0]
	if s.Tag != 5 {
		t.Fatalf("span tag through reconnecting client: %+v", s)
	}
}

// TestSampledClientAndServer checks frame-ID sampling end to end: every call
// is counted on both sides, but only the 1-in-N on the sample grid are timed
// and recorded as spans — and both sides pick the same calls.
func TestSampledClientAndServer(t *testing.T) {
	clientTr, serverTr := trace.New(1024), trace.New(1024)
	clientTr.SetSampleEvery(4)
	serverTr.SetSampleEvery(4)
	n := simnet.New(simnet.Config{PropDelay: -1})
	srv, err := Serve(n.Host("server"), ":0", &echoHandler{}, ServerOptions{Tracer: serverTr})
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()
	cli, err := Dial(context.Background(), n.Host("client"), srv.Addr().String(),
		DialOptions{Tracer: clientTr, SpanTag: 7})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cli.Close()

	const calls = 8 // frame IDs 1..8: IDs 4 and 8 are on the grid
	for i := 0; i < calls; i++ {
		if _, err := cli.Call(context.Background(), &wire.Heartbeat{SentUnixMicros: 1}); err != nil {
			t.Fatalf("Call %d: %v", i, err)
		}
	}

	spans := waitSpans(t, clientTr, trace.KindCall, 2)
	if len(spans) != 2 {
		t.Fatalf("client spans = %d, want 2", len(spans))
	}
	for _, s := range spans {
		if s.Call%4 != 0 {
			t.Fatalf("client sampled off-grid frame ID: %+v", s)
		}
		if s.Dur <= 0 {
			t.Fatalf("sampled client span not timed: %+v", s)
		}
	}
	srvSpans := waitSpans(t, serverTr, trace.KindServer, 2)
	if len(srvSpans) != 2 {
		t.Fatalf("server spans = %d, want 2", len(srvSpans))
	}
	for _, s := range srvSpans {
		if s.Call%4 != 0 {
			t.Fatalf("server sampled off-grid frame ID: %+v", s)
		}
	}

	ct := clientTr.Totals()
	if ct.ClientCalls != calls || ct.ClientSampled != 2 {
		t.Fatalf("client totals: %+v", ct)
	}
	// Server counts drain on the handler loop; totals may trail the last
	// response briefly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := serverTr.Totals()
		if st.ServerCalls == calls && st.ServerSampled == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server totals: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
}
