// Package telemetry measures control-cycle latency: per-phase duration
// histograms with percentile queries, and the cycle recorder that produces
// the numbers behind the paper's Figures 4-6.
package telemetry

import (
	"fmt"
	"math"
	"math/bits"
	"strings"
	"sync"
	"time"
)

const (
	// subBucketBits sets histogram resolution: each power-of-two range is
	// split into 2^subBucketBits linear sub-buckets (~1.5% relative error).
	subBucketBits = 4
	subBuckets    = 1 << subBucketBits
	// maxExp covers durations up to ~2^40 ns (~18 minutes).
	maxExp      = 40
	bucketCount = (maxExp + 1) * subBuckets
)

// Histogram records durations with bounded relative error and constant
// memory. It is safe for concurrent use.
type Histogram struct {
	mu      sync.Mutex
	counts  [bucketCount]uint64
	n       uint64
	sum     float64 // seconds
	sumSq   float64 // seconds^2
	minSeen time.Duration
	maxSeen time.Duration
}

// bucketIndex maps a duration to its bucket.
func bucketIndex(d time.Duration) int {
	ns := uint64(d.Nanoseconds())
	if ns == 0 {
		return 0
	}
	exp := bits.Len64(ns) - 1
	if exp > maxExp {
		exp = maxExp
		ns = 1 << maxExp
	}
	var sub uint64
	if exp >= subBucketBits {
		sub = (ns >> (uint(exp) - subBucketBits)) & (subBuckets - 1)
	} else {
		sub = (ns << (subBucketBits - uint(exp))) & (subBuckets - 1)
	}
	return exp*subBuckets + int(sub)
}

// bucketUpper returns a representative (upper-bound) duration for bucket i.
func bucketUpper(i int) time.Duration {
	exp := i / subBuckets
	sub := i % subBuckets
	if exp == 0 {
		return time.Duration(sub + 1)
	}
	base := uint64(1) << uint(exp)
	step := base / subBuckets
	if step == 0 {
		step = 1
	}
	return time.Duration(base + uint64(sub+1)*step)
}

// Record adds one duration observation. Negative durations count as zero.
func (h *Histogram) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s := d.Seconds()
	i := bucketIndex(d)
	h.mu.Lock()
	h.counts[i]++
	h.n++
	h.sum += s
	h.sumSq += s * s
	if h.n == 1 || d < h.minSeen {
		h.minSeen = d
	}
	if d > h.maxSeen {
		h.maxSeen = d
	}
	h.mu.Unlock()
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Mean returns the exact arithmetic mean of recorded durations.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	return time.Duration(math.Round(h.sum / float64(h.n) * float64(time.Second)))
}

// Stddev returns the exact population standard deviation.
func (h *Histogram) Stddev() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	mean := h.sum / float64(h.n)
	variance := h.sumSq/float64(h.n) - mean*mean
	if variance < 0 {
		variance = 0
	}
	return time.Duration(math.Round(math.Sqrt(variance) * float64(time.Second)))
}

// Min returns the smallest recorded duration.
func (h *Histogram) Min() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.minSeen
}

// Max returns the largest recorded duration.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.maxSeen
}

// Quantile returns an upper bound for the q-quantile (0 <= q <= 1) with the
// histogram's bucket resolution.
func (h *Histogram) Quantile(q float64) time.Duration {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(h.n)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			u := bucketUpper(i)
			if u > h.maxSeen {
				u = h.maxSeen
			}
			return u
		}
	}
	return h.maxSeen
}

// Merge folds other's observations into h, so per-controller recorders can
// be combined into one distribution (e.g. across the peers of a
// coordinated control plane). other is read under its own lock and may be
// concurrently updated; the merge is a consistent snapshot of it.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || h == other {
		return
	}
	other.mu.Lock()
	counts := other.counts
	n := other.n
	sum, sumSq := other.sum, other.sumSq
	minSeen, maxSeen := other.minSeen, other.maxSeen
	other.mu.Unlock()
	if n == 0 {
		return
	}

	h.mu.Lock()
	for i, c := range counts {
		h.counts[i] += c
	}
	if h.n == 0 || minSeen < h.minSeen {
		h.minSeen = minSeen
	}
	if maxSeen > h.maxSeen {
		h.maxSeen = maxSeen
	}
	h.n += n
	h.sum += sum
	h.sumSq += sumSq
	h.mu.Unlock()
}

// Merge folds other's cycles into r, phase by phase.
func (r *CycleRecorder) Merge(other *CycleRecorder) {
	if other == nil || r == other {
		return
	}
	for i := range r.phases {
		r.phases[i].Merge(&other.phases[i])
	}
}

// Reset discards all observations.
func (h *Histogram) Reset() {
	h.mu.Lock()
	h.counts = [bucketCount]uint64{}
	h.n = 0
	h.sum, h.sumSq = 0, 0
	h.minSeen, h.maxSeen = 0, 0
	h.mu.Unlock()
}

// Phase identifies one phase of a control cycle.
type Phase int

// The phases of a control cycle, in execution order (paper §II-B: collect
// metrics, compute the algorithm, enforce rules).
const (
	PhaseCollect Phase = iota
	PhaseCompute
	PhaseEnforce
	// PhaseTotal is the whole cycle, measured independently (it may exceed
	// the sum of the phases by bookkeeping overhead).
	PhaseTotal
	numPhases
)

// String returns the phase name used in reports.
func (p Phase) String() string {
	switch p {
	case PhaseCollect:
		return "collect"
	case PhaseCompute:
		return "compute"
	case PhaseEnforce:
		return "enforce"
	case PhaseTotal:
		return "total"
	}
	return fmt.Sprintf("Phase(%d)", int(p))
}

// Breakdown is one control cycle's phase timing.
type Breakdown struct {
	// Collect is the duration of the metric-collection phase.
	Collect time.Duration
	// Compute is the duration of the control-algorithm phase.
	Compute time.Duration
	// Enforce is the duration of the rule-enforcement phase.
	Enforce time.Duration
	// Total is the whole cycle's duration.
	Total time.Duration
}

// MergeMax folds concurrent per-shard breakdowns into one deployment-level
// breakdown: shards run their cycles in parallel, so the deployment's phase
// latency is the slowest shard's, not the sum. Zero-value inputs (a shard
// that skipped its cycle) merge as free.
func MergeMax(bs ...Breakdown) Breakdown {
	var out Breakdown
	for _, b := range bs {
		out.Collect = max(out.Collect, b.Collect)
		out.Compute = max(out.Compute, b.Compute)
		out.Enforce = max(out.Enforce, b.Enforce)
		out.Total = max(out.Total, b.Total)
	}
	return out
}

// CycleRecorder accumulates per-phase statistics across control cycles.
type CycleRecorder struct {
	phases [numPhases]Histogram
}

// NewCycleRecorder returns an empty recorder.
func NewCycleRecorder() *CycleRecorder { return &CycleRecorder{} }

// Record adds one cycle's breakdown.
func (r *CycleRecorder) Record(b Breakdown) {
	r.phases[PhaseCollect].Record(b.Collect)
	r.phases[PhaseCompute].Record(b.Compute)
	r.phases[PhaseEnforce].Record(b.Enforce)
	r.phases[PhaseTotal].Record(b.Total)
}

// Phase returns the histogram for one phase.
func (r *CycleRecorder) Phase(p Phase) *Histogram { return &r.phases[p] }

// Cycles returns the number of recorded cycles.
func (r *CycleRecorder) Cycles() uint64 { return r.phases[PhaseTotal].Count() }

// Reset discards all recorded cycles.
func (r *CycleRecorder) Reset() {
	for i := range r.phases {
		r.phases[i].Reset()
	}
}

// PhaseSummary is the per-phase statistics block of a Summary.
type PhaseSummary struct {
	// Mean is the arithmetic mean latency.
	Mean time.Duration
	// Stddev is the population standard deviation.
	Stddev time.Duration
	// P50, P95 and P99 are latency quantile upper bounds.
	P50, P95, P99 time.Duration
	// Min and Max are the observed extremes.
	Min, Max time.Duration
}

// Summary is a complete statistical digest of a recorder.
type Summary struct {
	// Cycles is the number of control cycles recorded.
	Cycles uint64
	// Collect, Compute, Enforce and Total summarize each phase.
	Collect, Compute, Enforce, Total PhaseSummary
}

// Summarize digests the recorder's current state.
func (r *CycleRecorder) Summarize() Summary {
	digest := func(h *Histogram) PhaseSummary {
		return PhaseSummary{
			Mean:   h.Mean(),
			Stddev: h.Stddev(),
			P50:    h.Quantile(0.50),
			P95:    h.Quantile(0.95),
			P99:    h.Quantile(0.99),
			Min:    h.Min(),
			Max:    h.Max(),
		}
	}
	return Summary{
		Cycles:  r.Cycles(),
		Collect: digest(&r.phases[PhaseCollect]),
		Compute: digest(&r.phases[PhaseCompute]),
		Enforce: digest(&r.phases[PhaseEnforce]),
		Total:   digest(&r.phases[PhaseTotal]),
	}
}

// RelStddev returns the total phase's standard deviation as a fraction of
// its mean (the paper reports this staying below 6%).
func (s Summary) RelStddev() float64 {
	if s.Total.Mean == 0 {
		return 0
	}
	return float64(s.Total.Stddev) / float64(s.Total.Mean)
}

// String renders the summary as an aligned human-readable table.
func (s Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycles: %d\n", s.Cycles)
	fmt.Fprintf(&b, "%-8s %12s %12s %12s %12s %12s\n", "phase", "mean", "stddev", "p50", "p95", "p99")
	row := func(name string, p PhaseSummary) {
		fmt.Fprintf(&b, "%-8s %12v %12v %12v %12v %12v\n",
			name, p.Mean.Round(time.Microsecond), p.Stddev.Round(time.Microsecond),
			p.P50.Round(time.Microsecond), p.P95.Round(time.Microsecond), p.P99.Round(time.Microsecond))
	}
	row("collect", s.Collect)
	row("compute", s.Compute)
	row("enforce", s.Enforce)
	row("total", s.Total)
	return b.String()
}

// CSVHeader returns the header row matching CSVRow.
func CSVHeader() string {
	return "cycles,collect_mean_us,compute_mean_us,enforce_mean_us,total_mean_us,total_p95_us,total_p99_us,total_stddev_us"
}

// CSVRow renders the summary as one CSV row (microsecond units).
func (s Summary) CSVRow() string {
	us := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
	return fmt.Sprintf("%d,%.1f,%.1f,%.1f,%.1f,%.1f,%.1f,%.1f",
		s.Cycles, us(s.Collect.Mean), us(s.Compute.Mean), us(s.Enforce.Mean),
		us(s.Total.Mean), us(s.Total.P95), us(s.Total.P99), us(s.Total.Stddev))
}
