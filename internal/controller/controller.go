// Package controller implements the sdscale control plane: the global
// controller that runs the control cycle (collect → compute → enforce,
// paper §II-B) and the aggregator controllers that form the extra level of
// the hierarchical design (paper Fig. 3).
//
// Topologies:
//
//   - Flat (paper Fig. 2): one Global whose children are data-plane stages.
//     It collects every stage's report, runs the control algorithm, and
//     enforces one rule per stage. The controller holds one long-lived
//     connection per stage, which is exactly why the design hits the
//     per-node connection limit (§IV-A).
//   - Hierarchical (paper Fig. 3): one Global whose children are
//     Aggregators, each owning a disjoint set of stages. Aggregators fan
//     collections out, pre-aggregate per-job metrics (shrinking the
//     global's inbound traffic), and fan enforcement rules back down. The
//     global still computes rules for every stage (§IV-B, Table III).
//
// Resource accounting: each controller role owns a transport.Meter (bytes)
// and a monitor.CPUMeter (busy time on compute sections and send-path
// marshaling), which the experiment harness turns into the rows of the
// paper's Tables II–IV.
package controller

import (
	"context"
	"sync"
	"time"

	"github.com/dsrhaslab/sdscale/internal/rpc"
	"github.com/dsrhaslab/sdscale/internal/stage"
	"github.com/dsrhaslab/sdscale/internal/telemetry"
	"github.com/dsrhaslab/sdscale/internal/wire"
)

// DefaultFanOut is the bounded parallelism controllers use when fanning
// requests out to children. It models the fixed handler pool of the
// paper's gRPC-based prototype: per-child work beyond the pool width
// accumulates, which is what makes control-cycle latency grow with the
// number of children (Fig. 4).
const DefaultFanOut = 8

// DefaultMaxFailures is how many consecutive call failures a controller
// tolerates before quarantining a child (tripping its circuit breaker).
const DefaultMaxFailures = 3

// Circuit-breaker defaults shared by all controller roles.
const (
	// DefaultProbeInterval is the base interval between half-open
	// heartbeat probes to a quarantined child.
	DefaultProbeInterval = 100 * time.Millisecond
	// DefaultMaxProbeInterval caps the probe backoff.
	DefaultMaxProbeInterval = time.Second
	// DefaultStaleAfter bounds how old a quarantined child's last-known
	// report may be and still feed a degraded cycle.
	DefaultStaleAfter = 10 * time.Second
)

// breakerConfig is the per-child circuit-breaker policy shared by the
// three controller roles.
type breakerConfig struct {
	// MaxFailures consecutive call errors trip the breaker.
	MaxFailures int
	// ProbeInterval is the base half-open probe interval; it doubles after
	// each failed probe up to MaxProbeInterval.
	ProbeInterval    time.Duration
	MaxProbeInterval time.Duration
	// StaleAfter bounds the age of last-known reports used by degraded
	// cycles.
	StaleAfter time.Duration
	// EvictAfter, when positive, permanently removes a child quarantined
	// for that long. Zero never evicts.
	EvictAfter time.Duration
}

func (bc breakerConfig) withDefaults() breakerConfig {
	if bc.MaxFailures <= 0 {
		bc.MaxFailures = DefaultMaxFailures
	}
	if bc.ProbeInterval <= 0 {
		bc.ProbeInterval = DefaultProbeInterval
	}
	if bc.MaxProbeInterval <= 0 {
		bc.MaxProbeInterval = DefaultMaxProbeInterval
	}
	if bc.MaxProbeInterval < bc.ProbeInterval {
		bc.MaxProbeInterval = bc.ProbeInterval
	}
	if bc.StaleAfter <= 0 {
		bc.StaleAfter = DefaultStaleAfter
	}
	return bc
}

// reconnectPolicy derives a child connection's redial policy from the
// breaker policy, so the transport never lags the probe cadence by more
// than one probe interval.
func (bc breakerConfig) reconnectPolicy() rpc.ReconnectPolicy {
	base := bc.ProbeInterval / 4
	if base < 5*time.Millisecond {
		base = 5 * time.Millisecond
	}
	return rpc.ReconnectPolicy{BaseDelay: base, MaxDelay: bc.MaxProbeInterval}
}

// child is a controller's handle to one downstream component (a stage or an
// aggregator), with its long-lived self-healing RPC connection and its
// circuit-breaker state.
type child struct {
	info stage.Info
	role wire.Role
	cli  *rpc.ReconnectingClient
	// stages lists the stages behind an aggregator child; nil for stages.
	stages []stage.Info

	mu    sync.Mutex
	fails int
	// Circuit-breaker state: a quarantined child is skipped by the
	// collect/enforce scatter and probed with half-open heartbeats until
	// one succeeds (readmission) or EvictAfter expires (eviction).
	quarantined   bool
	quarantinedAt time.Time
	nextProbe     time.Time
	probeDelay    time.Duration
	// lastReport is the most recent successful collect response, kept so
	// degraded cycles can proceed on slightly stale data while the child
	// is quarantined; lastReportAt bounds its staleness.
	lastReport   wire.Message
	lastReportAt time.Time
	// lastRules caches the most recently enforced rule per stage for
	// delta enforcement (skip sends when nothing changed).
	lastRules map[uint64]wire.Rule
	// Incremental-mode state: dirty marks a report change the next
	// incremental cycle must recompute over (set by pushes, claimed by the
	// cycle); pushSeq orders pushes from this child so a reordered stale
	// delta never overwrites a newer report; forceCollect schedules one
	// explicit collect (set on re-registration and readmission, when
	// whatever the cache holds may predate the disruption).
	dirty        bool
	pushSeq      uint64
	forceCollect bool
}

// filterChanged returns only the rules that differ from what was last sent
// to this child, updating the cache. With deterministic demand (the stress
// workload) allocations repeat bit-for-bit, so exact comparison suffices.
func (c *child) filterChanged(rules []wire.Rule) []wire.Rule {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.lastRules == nil {
		c.lastRules = make(map[uint64]wire.Rule, len(rules))
	}
	changed := rules[:0:0]
	for _, r := range rules {
		if prev, ok := c.lastRules[r.StageID]; !ok || prev != r {
			changed = append(changed, r)
			c.lastRules[r.StageID] = r
		}
	}
	return changed
}

// recordFailure counts one failed call and reports whether it tripped the
// breaker (the quarantine transition happens exactly once).
func (c *child) recordFailure(bc breakerConfig, now time.Time) (tripped bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.fails++
	if c.quarantined || c.fails < bc.MaxFailures {
		return false
	}
	c.quarantined = true
	c.quarantinedAt = now
	c.probeDelay = bc.ProbeInterval
	c.nextProbe = now.Add(c.probeDelay)
	return true
}

// recordSuccess resets the failure count and reports whether it readmitted
// a quarantined child. A readmitted child is marked dirty with a forced
// collect: its cached report (and possibly its rules) predate the outage, so
// the next incremental cycle must refresh it rather than fast-path past it.
// The dirty flag a child accumulated while quarantined survives — pushes
// that arrived during the outage still count.
func (c *child) recordSuccess() (readmitted bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.fails = 0
	if !c.quarantined {
		return false
	}
	c.quarantined = false
	c.dirty = true
	c.forceCollect = true
	return true
}

// isQuarantined reports the breaker state.
func (c *child) isQuarantined() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.quarantined
}

// quarantineAge returns how long the child has been quarantined (zero if it
// is not).
func (c *child) quarantineAge(now time.Time) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.quarantined {
		return 0
	}
	return now.Sub(c.quarantinedAt)
}

// probeDue reports whether a quarantined child should be probed now.
func (c *child) probeDue(now time.Time) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.quarantined && !now.Before(c.nextProbe)
}

// failProbe backs the probe schedule off after an unsuccessful half-open
// probe.
func (c *child) failProbe(bc breakerConfig, now time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.probeDelay *= 2
	if c.probeDelay > bc.MaxProbeInterval {
		c.probeDelay = bc.MaxProbeInterval
	}
	c.nextProbe = now.Add(c.probeDelay)
}

// noteReport caches the child's latest successful collect response for
// degraded cycles. The message is deep-copied into child-owned storage
// (reusing its capacity, so steady state allocates nothing): with reply
// reuse enabled the decoded message is overwritten by the connection's next
// response of the same type, so retaining it directly would corrupt the
// cache.
func (c *child) noteReport(m wire.Message, now time.Time) {
	c.mu.Lock()
	c.lastReport = copyReport(c.lastReport, m)
	c.lastReportAt = now
	c.mu.Unlock()
}

// copyReport deep-copies a collect response into dst's storage when the
// types match (reusing slice capacity), allocating fresh otherwise. Types
// without retained slices are stored as-is.
func copyReport(dst, src wire.Message) wire.Message {
	switch s := src.(type) {
	case *wire.CollectReply:
		d, ok := dst.(*wire.CollectReply)
		if !ok {
			d = &wire.CollectReply{}
		}
		d.Cycle = s.Cycle
		d.Reports = append(d.Reports[:0], s.Reports...)
		return d
	case *wire.CollectAggReply:
		d, ok := dst.(*wire.CollectAggReply)
		if !ok {
			d = &wire.CollectAggReply{}
		}
		d.Cycle, d.AggregatorID = s.Cycle, s.AggregatorID
		d.Jobs = append(d.Jobs[:0], s.Jobs...)
		return d
	}
	return src
}

// notePush folds an unsolicited ReportDelta into the child's report cache
// and marks it dirty. The report is stored as a single-entry CollectReply so
// the degraded-cycle and incremental compute paths see one shape regardless
// of how the data arrived; storage is child-owned and capacity-reusing, so
// steady-state pushes allocate nothing after the first. Reordered stale
// deltas (Seq at or below the last accepted, without the Full marker that
// follows a stage restart or epoch change) are dropped. It reports whether
// the push was accepted.
func (c *child) notePush(rd *wire.ReportDelta, now time.Time) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !rd.Full && rd.Seq <= c.pushSeq {
		return false
	}
	c.pushSeq = rd.Seq
	d, ok := c.lastReport.(*wire.CollectReply)
	if !ok {
		d = &wire.CollectReply{}
	}
	d.Reports = append(d.Reports[:0], rd.Report)
	c.lastReport = d
	c.lastReportAt = now
	c.dirty = true
	return true
}

// incrementalState claims the child's dirty flag for the cycle being
// prepared and reports whether the incremental collect set must include it:
// a forced collect is pending (claimed too), no report was ever cached, or
// the cache is older than floor (the heartbeat-floor check that makes a
// silent child distinguishable from an unchanged one — a live pushing child
// refreshes its cache at the stage-side floor, which is tighter). A push
// arriving after the claim re-dirties the child for the next cycle.
func (c *child) incrementalState(now time.Time, floor time.Duration) (wasDirty, collect bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	wasDirty = c.dirty
	c.dirty = false
	collect = c.forceCollect || c.lastReport == nil || now.Sub(c.lastReportAt) >= floor
	c.forceCollect = false
	return wasDirty, collect
}

// staleReport returns the cached report and its age. ok is true only if a
// report exists and is strictly younger than staleAfter: a report aged
// exactly StaleAfter is already too old to feed a degraded cycle. When a
// report exists but has aged out, the age is still returned (with ok
// false) so the drop can be accounted.
func (c *child) staleReport(now time.Time, staleAfter time.Duration) (m wire.Message, age time.Duration, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.lastReport == nil {
		return nil, 0, false
	}
	age = now.Sub(c.lastReportAt)
	if age >= staleAfter {
		return nil, age, false
	}
	return c.lastReport, age, true
}

// appendCachedReports appends the cached report's stage rows to dst while
// holding the child's lock. staleReport hands out the cache by reference,
// which is safe only while nothing rewrites it; a stage child's cache is
// rewritten in place by concurrent pushes (notePush reuses the slice
// capacity), so every compute path that folds stage caches must copy the
// rows out under the lock or risk a torn read. Age and ok follow
// staleReport's semantics; a cache of a non-stage shape reports ok false.
func (c *child) appendCachedReports(dst []wire.StageReport, now time.Time, staleAfter time.Duration) ([]wire.StageReport, time.Duration, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.lastReport == nil {
		return dst, 0, false
	}
	age := now.Sub(c.lastReportAt)
	if age >= staleAfter {
		return dst, age, false
	}
	r, ok := c.lastReport.(*wire.CollectReply)
	if !ok {
		return dst, age, false
	}
	return append(dst, r.Reports...), age, true
}

// seedRules primes the delta-enforcement cache with rules a predecessor
// controller already sent, so a promoted standby's first cycle diffs
// against what the stages actually hold instead of re-sending everything.
func (c *child) seedRules(rules []wire.Rule) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.lastRules == nil {
		c.lastRules = make(map[uint64]wire.Rule, len(rules))
	}
	for _, r := range rules {
		c.lastRules[r.StageID] = r
	}
}

// snapshotRules copies the delta-enforcement cache for state replication.
func (c *child) snapshotRules() []wire.Rule {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.lastRules) == 0 {
		return nil
	}
	out := make([]wire.Rule, 0, len(c.lastRules))
	for _, r := range c.lastRules {
		out = append(out, r)
	}
	return out
}

// replaceClient swaps in a fresh connection after a known child
// re-registers, closing the stale one. Breaker state is deliberately kept:
// a re-registration proves the child is alive, but readmission still goes
// through the normal success path so telemetry sees it. The child's info is
// immutable — a re-registration may only change the connection.
//
// The delta-enforcement cache is cleared: a child that re-registers has
// restarted (or re-homed to a promoted standby), so whatever rules it held
// are gone, and the next cycle must send it the full rule set rather than
// diffing against state the child no longer has.
func (c *child) replaceClient(cli *rpc.ReconnectingClient) {
	c.mu.Lock()
	old := c.cli
	c.cli = cli
	c.lastRules = nil
	// The restarted child's push sequence starts over and its cached report
	// predates the restart: accept any incoming sequence, refresh with an
	// explicit collect, and make the next incremental cycle recompute.
	c.pushSeq = 0
	c.dirty = true
	c.forceCollect = true
	c.mu.Unlock()
	if old != nil {
		old.Close()
	}
}

// client returns the child's current connection.
func (c *child) client() *rpc.ReconnectingClient {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cli
}

// recordCall applies one call's outcome to the child's breaker. Errors
// caused by the caller's own context (shutdown or cycle-deadline expiry
// mid-scatter) are not the child's fault and leave the breaker untouched.
// faults and logf must be non-nil.
func recordCall(ctx context.Context, c *child, err error, bc breakerConfig,
	faults *telemetry.FaultCounters, logf func(format string, args ...any), who string) {
	if err == nil {
		if c.recordSuccess() {
			faults.Readmit()
			logf("%s: readmitted child %d", who, c.info.ID)
		}
		return
	}
	// Pipelined calls surface connection death at harvest time rather than
	// inside ReconnectingClient.Call; give the wrapper the chance to start
	// its background redial (a no-op for healthy connections and for the
	// synchronous path, which already checked inline).
	c.client().NoteError(ctx, err)
	if ctx.Err() != nil {
		return // caller-side cancellation, not a child failure
	}
	if c.recordFailure(bc, time.Now()) {
		faults.Quarantine()
		logf("%s: quarantined child %d after %d consecutive failures", who, c.info.ID, bc.MaxFailures)
	}
}

// splitQuarantined partitions a membership snapshot by breaker state.
func splitQuarantined(children []*child) (active, quarantined []*child) {
	active = make([]*child, 0, len(children))
	for _, c := range children {
		if c.isQuarantined() {
			quarantined = append(quarantined, c)
		} else {
			active = append(active, c)
		}
	}
	return active, quarantined
}

// cycleScratch holds the per-controller slices a cycle's preparation reuses
// across cycles, so the steady state rebuilds no membership slices at all.
// It belongs to the single goroutine running that controller's cycles;
// concurrent readers (Stats) keep using the allocating helpers.
type cycleScratch struct {
	members     []*child
	active      []*child
	quarantined []*child
	collect     []*child
}

// split re-snapshots the membership into the scratch slices and partitions
// it by breaker state.
func (s *cycleScratch) split(m *memberSet) (active, quarantined []*child) {
	s.members = m.snapshotInto(s.members)
	s.active, s.quarantined = s.active[:0], s.quarantined[:0]
	for _, c := range s.members {
		if c.isQuarantined() {
			s.quarantined = append(s.quarantined, c)
		} else {
			s.active = append(s.active, c)
		}
	}
	return s.active, s.quarantined
}

// sweepProbes sends half-open heartbeats to the quarantined children whose
// probe is due, readmitting those that answer. It returns the children
// whose quarantine outlived EvictAfter; the caller owns their removal.
// faults and logf must be non-nil.
func sweepProbes(ctx context.Context, quarantined []*child, bc breakerConfig, fanOut int,
	timeout time.Duration, faults *telemetry.FaultCounters, logf func(format string, args ...any), who string) (evictable []*child) {
	now := time.Now()
	var due []*child
	for _, c := range quarantined {
		if bc.EvictAfter > 0 && c.quarantineAge(now) >= bc.EvictAfter {
			evictable = append(evictable, c)
			continue
		}
		if c.probeDue(now) {
			due = append(due, c)
		}
	}
	if len(due) == 0 {
		return evictable
	}
	// One shared heartbeat body serves every probe: the echo timestamp is
	// unused (readmission only checks for an ack), so sharing it is exact.
	hb := rpc.NewSharedFrame(&wire.Heartbeat{SentUnixMicros: now.UnixMicro()})
	defer hb.Release()
	rpc.Scatter(ctx, len(due), fanOut, func(i int) {
		c := due[i]
		cctx, cancel := context.WithTimeout(ctx, timeout)
		resp, err := c.client().GoShared(cctx, hb).Wait(cctx)
		cancel()
		if err != nil && ctx.Err() != nil {
			return // caller shutdown mid-probe: no accounting
		}
		// The async path surfaces connection death at harvest; give the
		// reconnect wrapper the chance to start its background redial.
		c.client().NoteError(ctx, err)
		ok := err == nil
		if ok {
			_, ok = resp.(*wire.HeartbeatAck)
		}
		faults.Probe(ok)
		if !ok {
			c.failProbe(bc, time.Now())
			return
		}
		age := c.quarantineAge(time.Now())
		if c.recordSuccess() {
			faults.Readmit()
			logf("%s: readmitted child %d after %v in quarantine", who, c.info.ID, age.Round(time.Millisecond))
		}
	})
	return evictable
}

// memberSet tracks a controller's children with cheap snapshotting: the
// control cycle iterates a point-in-time slice while registrations proceed
// concurrently.
type memberSet struct {
	mu    sync.Mutex
	byID  map[uint64]*child
	order []*child
	epoch uint64
}

func newMemberSet() *memberSet {
	return &memberSet{byID: make(map[uint64]*child)}
}

// add inserts c; it reports false if the ID is already present.
func (m *memberSet) add(c *child) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.byID[c.info.ID]; dup {
		return false
	}
	m.byID[c.info.ID] = c
	m.order = append(m.order, c)
	m.epoch++
	return true
}

// get returns the child by ID (nil if absent).
func (m *memberSet) get(id uint64) *child {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.byID[id]
}

// remove deletes the child by ID and returns it (nil if absent).
func (m *memberSet) remove(id uint64) *child {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.byID[id]
	if !ok {
		return nil
	}
	delete(m.byID, id)
	for i, o := range m.order {
		if o == c {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	m.epoch++
	return c
}

// snapshot returns the current children. The slice is fresh; the children
// are shared.
func (m *memberSet) snapshot() []*child {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*child, len(m.order))
	copy(out, m.order)
	return out
}

// snapshotInto is snapshot reusing buf's backing array when capacity allows
// — the cycle-preparation path snapshots every cycle, and in the steady
// state the membership hasn't changed since the last one.
func (m *memberSet) snapshotInto(buf []*child) []*child {
	m.mu.Lock()
	defer m.mu.Unlock()
	if cap(buf) < len(m.order) {
		buf = make([]*child, len(m.order))
	}
	buf = buf[:len(m.order)]
	copy(buf, m.order)
	return buf
}

// size returns the current child count.
func (m *memberSet) size() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.order)
}

// currentEpoch returns the membership epoch (bumped on every change).
func (m *memberSet) currentEpoch() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.epoch
}

// closeAll severs every child connection and empties the set.
func (m *memberSet) closeAll() {
	m.mu.Lock()
	children := m.order
	m.order = nil
	m.byID = make(map[uint64]*child)
	m.mu.Unlock()
	for _, c := range children {
		c.client().Close()
	}
}
