// Package rpc implements the request/response protocol the sdscale control
// plane speaks between controllers and data-plane stages.
//
// The paper's prototype uses gRPC; rpc provides the equivalent semantics on
// top of any transport.Network with the standard library only:
//
//   - length-prefixed frames carrying wire messages;
//   - request multiplexing: one connection carries many in-flight calls,
//     correlated by request ID, so a controller keeps exactly one connection
//     per child regardless of cycle concurrency;
//   - per-connection ordered request handling on the server (like a gRPC
//     stream), with concurrency across connections;
//   - deadline and cancellation propagation: a call abandoned via its
//     context sends a best-effort cancel frame so the server can skip the
//     request if it has not started executing, and responses that arrive
//     after abandonment are counted (Client.LateResponses) and dropped;
//   - connection fault recovery via ReconnectingClient: redial with
//     exponential backoff and jitter, failing in-flight calls fast;
//   - an asynchronous call API (Client.Go returning a pooled *Call handle)
//     that pipelines many requests back-to-back over one connection — the
//     fast path of the control cycle's collect and enforce fan-out;
//   - a scatter-gather helper with bounded parallelism and cooperative
//     cancellation, the blocking fan-out primitive kept for paper-fidelity
//     reproduction of the prototype's bounded thread pool.
package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"

	"github.com/dsrhaslab/sdscale/internal/wire"
)

// frameBufs recycles frame encode buffers across clients, servers, and
// connections: a controller fanning out to thousands of children would
// otherwise regrow an encode buffer per call per cycle. Decoded messages
// never alias these buffers (see readFrame), so recycling is safe.
var frameBufs = sync.Pool{New: func() any {
	b := make([]byte, 0, 1024)
	return &b
}}

// maxPooledFrameBuf bounds what goes back into the pool: the occasional
// giant Enforce batch should not pin megabytes inside it.
const maxPooledFrameBuf = 1 << 20

func getFrameBuf() *[]byte { return frameBufs.Get().(*[]byte) }

func putFrameBuf(bp *[]byte) {
	if cap(*bp) > maxPooledFrameBuf {
		return
	}
	frameBufs.Put(bp)
}

// MaxFrameSize bounds a single frame; larger announcements are treated as
// protocol corruption. 64 MiB comfortably fits an Enforce batch for a full
// 10,000-stage cluster.
const MaxFrameSize = 64 << 20

// frame kinds. A frame's kind also names the codec version of its body, so
// codec upgrades are self-describing mid-stream and never ambiguous.
const (
	kindRequest  = 0
	kindResponse = 1
	// kindCancel withdraws an earlier request by ID. It carries no message
	// body. The server drops the request if it is still queued (or, when it
	// is currently executing, suppresses the response); no reply is ever
	// sent for a cancel frame. Because frames are delivered in order, a
	// cancel always trails the request it refers to.
	kindCancel = 2
	// kindHello negotiates the wire codec. Its body is a v1-encoded
	// wire.Heartbeat whose SentUnixMicros field carries the sender's maximum
	// codec version — chosen so a pre-v2 peer decodes the frame cleanly and
	// then drops the unknown kind on the floor, which downgrades both sides
	// to v1 without any round trip. The client sends a hello (id 0) as its
	// first frame; a v2-capable server replies in kind with the agreed
	// version and switches its responses to that codec from then on.
	kindHello = 3
	// kindRequestV2 and kindResponseV2 carry wire.CodecV2 bodies. Requests
	// are encoded statelessly (concurrent senders cannot share a float
	// history); responses carry the connection's response history, which the
	// single-reader/single-writer pairing keeps in lockstep.
	kindRequestV2  = 4
	kindResponseV2 = 5
	// kindPush is a server-initiated frame: an unsolicited message the
	// serving side writes on an established connection (id 0, no reply
	// expected). Its body is always encoded statelessly at wire.CodecV2 —
	// it must not touch the connection's response history, which stays in
	// lockstep with solicited responses. Pushes are only written on
	// connections that negotiated v2; a pre-push client's readLoop drops
	// the unknown kind on the floor, so interop needs no handshake change.
	kindPush = 6
)

// ErrFrameTooLarge reports an oversized frame announcement.
var ErrFrameTooLarge = errors.New("rpc: frame exceeds maximum size")

// frameHeader is the fixed metadata carried by every frame.
type frameHeader struct {
	id   uint64 // request correlation ID
	kind byte   // kindRequest or kindResponse
}

// appendFrame encodes a complete v1 frame (length prefix, header, message)
// into buf and returns the extended slice.
func appendFrame(buf []byte, h frameHeader, m wire.Message) []byte {
	return appendFrameWith(buf, h, m, wire.CodecV1, nil)
}

// appendFrameWith encodes a complete frame with the body in codec version
// ver, optionally delta-coded against hist. The caller must pick h.kind to
// match ver (kindRequestV2/kindResponseV2 for v2 bodies).
func appendFrameWith(buf []byte, h frameHeader, m wire.Message, ver int, hist *wire.FloatHistory) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0) // length placeholder
	buf = binary.AppendUvarint(buf, h.id)
	buf = append(buf, h.kind)
	buf = wire.EncodeWith(buf, m, ver, hist)
	binary.BigEndian.PutUint32(buf[start:], uint32(len(buf)-start-4))
	return buf
}

// appendSharedFrame encodes a frame whose body is already encoded (a
// SharedFrame's): the per-call work is just the header plus one memcopy,
// which is what makes broadcast fan-outs marshal-once.
func appendSharedFrame(buf []byte, h frameHeader, body []byte) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0) // length placeholder
	buf = binary.AppendUvarint(buf, h.id)
	buf = append(buf, h.kind)
	buf = append(buf, body...)
	binary.BigEndian.PutUint32(buf[start:], uint32(len(buf)-start-4))
	return buf
}

// appendHelloFrame encodes a codec-negotiation hello (or hello reply)
// announcing version. The body is a v1 Heartbeat so pre-v2 peers parse it
// and ignore it (see kindHello).
func appendHelloFrame(buf []byte, version int) []byte {
	return appendFrame(buf, frameHeader{id: 0, kind: kindHello}, &wire.Heartbeat{SentUnixMicros: int64(version)})
}

// parseHello extracts the announced codec version from a hello body.
func parseHello(body []byte) (int, bool) {
	m, err := wire.Decode(body)
	if err != nil {
		return 0, false
	}
	hb, ok := m.(*wire.Heartbeat)
	if !ok || hb.SentUnixMicros < 1 || hb.SentUnixMicros > 1<<16 {
		return 0, false
	}
	return int(hb.SentUnixMicros), true
}

// negotiate clamps the peer's announced version to ours.
func negotiate(theirs, ours int) int {
	if theirs < ours {
		return theirs
	}
	return ours
}

// appendCancelFrame encodes a body-less cancel frame for request id into buf
// and returns the extended slice.
func appendCancelFrame(buf []byte, id uint64) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0) // length placeholder
	buf = binary.AppendUvarint(buf, id)
	buf = append(buf, kindCancel)
	binary.BigEndian.PutUint32(buf[start:], uint32(len(buf)-start-4))
	return buf
}

// readFrame reads one frame from r into buf (which is grown as needed) and
// returns its header and raw body. The body aliases buf, so it is valid only
// until the next readFrame on the same buffer; callers decode it according
// to the frame kind before reading on. Cancel frames carry no body.
func readFrame(r io.Reader, buf []byte) (frameHeader, []byte, []byte, error) {
	// The length prefix is read into the reusable buffer rather than a
	// local array: passing a stack array's slice through the io.Reader
	// interface makes it escape, which costs one heap allocation per frame.
	if cap(buf) < 4 {
		buf = make([]byte, 4, 512)
	}
	if _, err := io.ReadFull(r, buf[:4]); err != nil {
		return frameHeader{}, nil, buf, err
	}
	n := binary.BigEndian.Uint32(buf[:4])
	if n > MaxFrameSize {
		return frameHeader{}, nil, buf, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return frameHeader{}, nil, buf, err
	}

	id, sz := binary.Uvarint(buf)
	if sz <= 0 {
		return frameHeader{}, nil, buf, errors.New("rpc: bad frame header")
	}
	if sz >= len(buf) {
		return frameHeader{}, nil, buf, errors.New("rpc: truncated frame header")
	}
	h := frameHeader{id: id, kind: buf[sz]}
	if h.kind == kindCancel {
		return h, nil, buf, nil
	}
	return h, buf[sz+1:], buf, nil
}

// reusableReply lists the response types eligible for the client-side reuse
// cache: high-frequency, slice-bearing or hot replies that controllers
// consume within the cycle that received them and never retain by pointer.
func reusableReply(t wire.MsgType) bool {
	switch t {
	case wire.TCollectReply, wire.TCollectAggReply, wire.TEnforceAck,
		wire.THeartbeatAck, wire.TPeerExchangeAck:
		return true
	}
	return false
}

// reusableRequest lists the request types eligible for the server-side
// freelist. Registration and state-bearing messages (Register, StateSync,
// PeerExchange) are excluded: handlers retain them past the response.
func reusableRequest(t wire.MsgType) bool {
	switch t {
	case wire.TCollect, wire.TEnforce, wire.THeartbeat, wire.TDelegate:
		return true
	}
	return false
}
