// Package pfs simulates a shared parallel file system in the style of
// Lustre: a metadata server (MDS) and a set of object storage targets (OSTs)
// with finite service capacities.
//
// The scalability experiments never touch the PFS — exactly as in the paper,
// whose virtual stages only answer the control plane. The simulator exists
// for the end-to-end QoS demonstrations (examples/ and the stage tests):
// jobs submit I/O through enforcing stages, the PFS saturates, and the
// control plane's PSFA allocations determine who makes progress.
//
// Each server is an M/D/1-style virtual-time queue: operations are serviced
// one at a time at a deterministic rate, so when offered load exceeds
// capacity, queueing delay — the I/O interference the paper opens with —
// grows without bound.
package pfs

import (
	"context"
	"errors"
	"sort"
	"sync"
	"time"

	"github.com/dsrhaslab/sdscale/internal/wire"
)

// ErrOverloaded is returned when a server's queue exceeds its bound, the
// simulator's analogue of a PFS timing out requests under contention.
var ErrOverloaded = errors.New("pfs: server queue overflow")

// Config parameterizes the simulated file system.
type Config struct {
	// OSTs is the number of object storage targets. Zero selects 8.
	OSTs int
	// OSTCapacity is each OST's data-operation service rate (IOPS). Zero
	// selects 10,000.
	OSTCapacity float64
	// MDSCapacity is the metadata server's service rate (ops/s). Zero
	// selects 5,000.
	MDSCapacity float64
	// MaxQueue bounds each server's queue (operations waiting or in
	// service). Zero selects 100,000; negative disables the bound.
	MaxQueue int
}

func (c Config) withDefaults() Config {
	if c.OSTs <= 0 {
		c.OSTs = 8
	}
	if c.OSTCapacity <= 0 {
		c.OSTCapacity = 10000
	}
	if c.MDSCapacity <= 0 {
		c.MDSCapacity = 5000
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 100000
	}
	return c
}

// server is one service point (the MDS or an OST) with deterministic
// service time and a virtual-time queue.
type server struct {
	mu       sync.Mutex
	svc      time.Duration // per-operation service time
	nextFree time.Time     // when the server finishes its current backlog
	queued   int
	maxQueue int
	done     uint64
}

func newServer(capacity float64, maxQueue int) *server {
	return &server{
		svc:      time.Duration(float64(time.Second) / capacity),
		maxQueue: maxQueue,
	}
}

// schedule reserves a service slot and returns the operation's completion
// time.
func (s *server) schedule(now time.Time) (time.Time, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.maxQueue >= 0 && s.queued >= s.maxQueue {
		return time.Time{}, ErrOverloaded
	}
	start := now
	if s.nextFree.After(start) {
		start = s.nextFree
	}
	complete := start.Add(s.svc)
	s.nextFree = complete
	s.queued++
	return complete, nil
}

// finish marks one operation complete.
func (s *server) finish() {
	s.mu.Lock()
	s.queued--
	s.done++
	s.mu.Unlock()
}

// depth returns the current queue length.
func (s *server) depth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queued
}

// completed returns the number of operations served.
func (s *server) completed() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.done
}

// clientStats accumulates one client's I/O accounting.
type clientStats struct {
	ops      [wire.NumClasses]uint64
	waitNS   [wire.NumClasses]int64
	lastSeen time.Time
}

// FileSystem is the simulated PFS.
type FileSystem struct {
	cfg  Config
	mds  *server
	osts []*server

	mu      sync.Mutex
	clients map[uint64]*clientStats
	started time.Time
}

// New creates a file system with the given configuration.
func New(cfg Config) *FileSystem {
	cfg = cfg.withDefaults()
	fs := &FileSystem{
		cfg:     cfg,
		mds:     newServer(cfg.MDSCapacity, cfg.MaxQueue),
		clients: make(map[uint64]*clientStats),
		started: time.Now(),
	}
	for i := 0; i < cfg.OSTs; i++ {
		fs.osts = append(fs.osts, newServer(cfg.OSTCapacity, cfg.MaxQueue))
	}
	return fs
}

// Capacity returns the aggregate service rate per operation class: all OSTs
// for data, the MDS for metadata. This is the value a system administrator
// would configure as the PSFA algorithm's cluster-wide maximum (paper
// §III-C).
func (fs *FileSystem) Capacity() wire.Rates {
	var r wire.Rates
	r[wire.ClassData] = fs.cfg.OSTCapacity * float64(fs.cfg.OSTs)
	r[wire.ClassMeta] = fs.cfg.MDSCapacity
	return r
}

// route picks the serving target for an operation. Data operations stripe
// across OSTs by client and a per-client counter (round-robin), metadata
// goes to the MDS.
func (fs *FileSystem) route(clientID uint64, class wire.OpClass, seq uint64) *server {
	if class == wire.ClassMeta {
		return fs.mds
	}
	return fs.osts[(clientID+seq)%uint64(len(fs.osts))]
}

// Submit issues one operation for clientID and blocks until the simulated
// file system completes it (or ctx ends). It returns the operation's
// simulated latency (queueing + service).
func (fs *FileSystem) Submit(ctx context.Context, clientID uint64, class wire.OpClass) (time.Duration, error) {
	now := time.Now()

	fs.mu.Lock()
	st, ok := fs.clients[clientID]
	if !ok {
		st = &clientStats{}
		fs.clients[clientID] = st
	}
	seq := st.ops[class]
	fs.mu.Unlock()

	srv := fs.route(clientID, class, seq)
	complete, err := srv.schedule(now)
	if err != nil {
		return 0, err
	}
	defer srv.finish()

	latency := complete.Sub(now)
	if latency > 0 {
		t := time.NewTimer(latency)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return 0, ctx.Err()
		}
	}

	fs.mu.Lock()
	st.ops[class]++
	st.waitNS[class] += int64(latency)
	st.lastSeen = time.Now()
	fs.mu.Unlock()
	return latency, nil
}

// ClientOps returns the number of completed operations per class for one
// client.
func (fs *FileSystem) ClientOps(clientID uint64) wire.Rates {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var r wire.Rates
	if st, ok := fs.clients[clientID]; ok {
		for c := range r {
			r[c] = float64(st.ops[c])
		}
	}
	return r
}

// ClientMeanLatency returns a client's mean operation latency per class.
func (fs *FileSystem) ClientMeanLatency(clientID uint64) [wire.NumClasses]time.Duration {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var out [wire.NumClasses]time.Duration
	if st, ok := fs.clients[clientID]; ok {
		for c := range out {
			if st.ops[c] > 0 {
				out[c] = time.Duration(st.waitNS[c] / int64(st.ops[c]))
			}
		}
	}
	return out
}

// Clients returns the known client IDs in ascending order.
func (fs *FileSystem) Clients() []uint64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	ids := make([]uint64, 0, len(fs.clients))
	for id := range fs.clients {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// TotalOps returns operations completed across all servers per class.
func (fs *FileSystem) TotalOps() wire.Rates {
	var r wire.Rates
	r[wire.ClassMeta] = float64(fs.mds.completed())
	for _, o := range fs.osts {
		r[wire.ClassData] += float64(o.completed())
	}
	return r
}

// QueueDepths returns the MDS queue depth and the summed OST queue depth, a
// direct contention signal.
func (fs *FileSystem) QueueDepths() (mds, osts int) {
	mds = fs.mds.depth()
	for _, o := range fs.osts {
		osts += o.depth()
	}
	return mds, osts
}
