package cluster

import (
	"context"
	"fmt"

	"github.com/dsrhaslab/sdscale/internal/controller"
	"github.com/dsrhaslab/sdscale/internal/monitor"
	"github.com/dsrhaslab/sdscale/internal/shard"
	"github.com/dsrhaslab/sdscale/internal/stage"
	"github.com/dsrhaslab/sdscale/internal/transport"
)

// This file is the live-reshaping surface of a built deployment: growing
// and shrinking the aggregator tier (the SLO elasticity loop's actuator),
// resizing the stage fleet and the shard set (config hot reload), and
// re-tuning QoS weights. None of these run concurrently with
// RunControlCycle — the sdsctl daemon serializes them at cycle boundaries,
// and tests follow the same discipline. The underlying child state they
// touch is still lock-guarded (see controller/elastic.go and the router's
// atomic state), so a misuse shows up as a momentary inconsistency rather
// than a torn read.

// NumAggregators returns the aggregator-tier size (Hierarchical only).
func (c *Cluster) NumAggregators() int { return len(c.Aggregators) }

// aggregatorConfig assembles the configuration for the aggregator at
// ordinal seq, mirroring the builder so grown aggregators are
// indistinguishable from built ones.
func (c *Cluster) aggregatorConfig(seq int, role Roles) controller.AggregatorConfig {
	cfg := c.cfg
	return controller.AggregatorConfig{
		ID:               uint64(1_000_000 + seq),
		Network:          c.Net.Host(fmt.Sprintf("agg-%d", seq+1)),
		FanOut:           cfg.FanOut,
		FanOutMode:       cfg.FanOutMode,
		CallTimeout:      cfg.CallTimeout,
		MaxCodec:         cfg.MaxCodec,
		ForwardRaw:       cfg.ForwardRaw,
		LocalControl:     cfg.Delegated,
		Incremental:      cfg.Incremental,
		IncrementalFloor: cfg.IncrementalFloor,
		MaxFailures:      cfg.MaxFailures,
		ProbeInterval:    cfg.ProbeInterval,
		MaxProbeInterval: cfg.MaxProbeInterval,
		StaleAfter:       cfg.StaleAfter,
		EvictAfter:       cfg.EvictAfter,
		Meter:            role.Meter,
		CPU:              role.CPU,
	}
}

// GrowAggregators adds one aggregator to the tier and re-homes stages onto
// it until the tier is balanced: stages move from the most loaded
// aggregators (destination adopts, source releases, the global controller's
// stage list for both is re-declared), so the per-aggregator fan-in — the
// quantity that drives collect latency — drops by roughly 1/(n+1). The new
// aggregator adopts the global controller's leadership epoch on its first
// cycle, exactly like a re-homed child.
func (c *Cluster) GrowAggregators(ctx context.Context) error {
	if c.Global == nil || len(c.Aggregators) == 0 {
		return fmt.Errorf("cluster: no aggregator tier to grow")
	}
	seq := c.aggSeq
	role := Roles{Meter: &transport.Meter{}, CPU: &monitor.CPUMeter{}}
	acfg := c.aggregatorConfig(seq, role)
	if c.Trace != nil {
		tr := c.newTracer()
		c.Trace.Mid = append(c.Trace.Mid, tr)
		acfg.Tracer = tr
	}
	agg, err := controller.StartAggregator(acfg)
	if err != nil {
		return fmt.Errorf("cluster: grow aggregator %d: %w", seq, err)
	}
	c.aggSeq++

	// Re-home stages from the most loaded aggregators until the new one
	// carries its balanced share.
	total := 0
	for _, a := range c.Aggregators {
		total += a.NumStages()
	}
	per := (total + len(c.Aggregators)) / (len(c.Aggregators) + 1) // ceil over the new tier size
	touched := make(map[int]bool)
	for agg.NumStages() < per {
		src, srcIdx := c.mostLoadedAggregator()
		if src == nil || src.NumStages() <= per {
			break // nothing left to take without unbalancing a donor
		}
		infos := src.Stages()
		info := infos[len(infos)-1]
		if err := agg.AddStage(ctx, info); err != nil {
			return fmt.Errorf("cluster: re-home stage %d: %w", info.ID, err)
		}
		src.RemoveStage(info.ID)
		touched[srcIdx] = true
	}
	for idx := range touched {
		a := c.Aggregators[idx]
		c.Global.SetAggregatorStages(a.ID(), a.Stages())
	}
	if err := c.Global.AddAggregator(ctx, agg.ID(), agg.Addr(), agg.Stages()); err != nil {
		return fmt.Errorf("cluster: attach grown aggregator: %w", err)
	}
	c.Aggregators = append(c.Aggregators, agg)
	c.AggregatorRoles = append(c.AggregatorRoles, role)
	return nil
}

// ShrinkAggregators removes the most recently added aggregator, re-homing
// its stages round-robin across the survivors before evicting and closing
// it. The tier never shrinks below one.
func (c *Cluster) ShrinkAggregators(ctx context.Context) error {
	if c.Global == nil || len(c.Aggregators) == 0 {
		return fmt.Errorf("cluster: no aggregator tier to shrink")
	}
	if len(c.Aggregators) == 1 {
		return fmt.Errorf("cluster: cannot shrink below one aggregator")
	}
	last := len(c.Aggregators) - 1
	victim := c.Aggregators[last]
	survivors := c.Aggregators[:last]

	for i, info := range victim.Stages() {
		dst := survivors[i%len(survivors)]
		if err := dst.AddStage(ctx, info); err != nil {
			return fmt.Errorf("cluster: re-home stage %d: %w", info.ID, err)
		}
		victim.RemoveStage(info.ID)
	}
	for _, a := range survivors {
		c.Global.SetAggregatorStages(a.ID(), a.Stages())
	}
	c.Global.RemoveChild(victim.ID())
	victim.Close()
	c.Aggregators = survivors
	c.AggregatorRoles = c.AggregatorRoles[:last]
	if c.Trace != nil && len(c.Trace.Mid) > last {
		c.Trace.Mid = c.Trace.Mid[:last]
	}
	return nil
}

// mostLoadedAggregator returns the aggregator managing the most stages.
func (c *Cluster) mostLoadedAggregator() (*controller.Aggregator, int) {
	var best *controller.Aggregator
	bestIdx := -1
	for i, a := range c.Aggregators {
		if best == nil || a.NumStages() > best.NumStages() {
			best, bestIdx = a, i
		}
	}
	return best, bestIdx
}

// leastLoadedAggregator returns the aggregator managing the fewest stages.
func (c *Cluster) leastLoadedAggregator() *controller.Aggregator {
	var best *controller.Aggregator
	for _, a := range c.Aggregators {
		if best == nil || a.NumStages() < best.NumStages() {
			best = a
		}
	}
	return best
}

// SetStages grows or shrinks the stage fleet to target: grown stages start
// on fresh hosts with fresh IDs and attach to the right owner (the global
// controller, the least-loaded aggregator, or the placement shard);
// shrunken stages release from their owner and close, newest first.
// Requires a standbys-free deployment — with warm standbys the fleet
// registers dynamically and the builder's parent lists would go stale.
func (c *Cluster) SetStages(ctx context.Context, target int) error {
	cfg := c.cfg
	switch {
	case target < 1:
		return fmt.Errorf("cluster: cannot shrink the fleet below one stage")
	case cfg.Standbys > 0:
		return fmt.Errorf("cluster: fleet resize requires standbys = 0")
	case len(c.Peers) > 0:
		return fmt.Errorf("cluster: fleet resize is not supported for the coordinated topology")
	case c.Router != nil && target < c.Router.NumShards():
		return fmt.Errorf("cluster: cannot shrink the fleet below the %d live shard(s)", c.Router.NumShards())
	}

	for len(c.Stages) < target {
		i := c.stageSeq
		c.stageSeq++
		v, err := stage.StartVirtual(stage.Config{
			ID:            i + 1,
			JobID:         i%uint64(cfg.Jobs) + 1,
			Weight:        1,
			Generator:     cfg.Workload,
			Network:       c.Net.Host(fmt.Sprintf("stage-%d", i+1)),
			Tracer:        c.stageTracer(),
			MaxCodec:      cfg.MaxCodec,
			PushThreshold: cfg.PushThreshold,
			PushInterval:  cfg.PushInterval,
			PushFloor:     cfg.PushFloor,
		})
		if err != nil {
			return fmt.Errorf("cluster: grow stage %d: %w", i+1, err)
		}
		switch {
		case c.Router != nil:
			s := c.Router.Place(v.Info().ID)
			if err := c.Router.Group(s).Leader().AddStage(ctx, v.Info()); err != nil {
				v.Close()
				return fmt.Errorf("cluster: shard %d attach: %w", s, err)
			}
		case len(c.Aggregators) > 0:
			agg := c.leastLoadedAggregator()
			if err := agg.AddStage(ctx, v.Info()); err != nil {
				v.Close()
				return fmt.Errorf("cluster: aggregator attach: %w", err)
			}
			c.Global.SetAggregatorStages(agg.ID(), agg.Stages())
		default:
			if err := c.Global.AddStage(ctx, v.Info()); err != nil {
				v.Close()
				return fmt.Errorf("cluster: flat attach: %w", err)
			}
		}
		c.Stages = append(c.Stages, v)
	}

	for len(c.Stages) > target {
		last := len(c.Stages) - 1
		v := c.Stages[last]
		id := v.Info().ID
		switch {
		case c.Router != nil:
			_, leader := c.Router.Route(id)
			leader.RemoveChild(id)
		case len(c.Aggregators) > 0:
			for _, a := range c.Aggregators {
				if a.RemoveStage(id) {
					c.Global.SetAggregatorStages(a.ID(), a.Stages())
					break
				}
			}
		default:
			c.Global.RemoveChild(id)
		}
		v.Close()
		c.Stages = c.Stages[:last]
	}
	return nil
}

// shardLeaderConfig assembles the configuration for shard s's leader,
// mirroring buildSharded (standbys-free resizes only, so no quorum
// wiring). Capacity is set by the caller after the rebalance settles.
func (c *Cluster) shardLeaderConfig(s int, role Roles) controller.GlobalConfig {
	cfg := c.cfg
	return controller.GlobalConfig{
		ListenAddr:       quorumPort,
		Network:          c.Net.Host(ShardHost(s)),
		ID:               1,
		Epoch:            1,
		Algorithm:        cfg.Algorithm,
		FanOut:           cfg.FanOut,
		FanOutMode:       cfg.FanOutMode,
		CallTimeout:      cfg.CallTimeout,
		MaxCodec:         cfg.MaxCodec,
		DeltaEnforcement: cfg.DeltaEnforcement,
		Incremental:      cfg.Incremental,
		IncrementalFloor: cfg.IncrementalFloor,
		MaxFailures:      cfg.MaxFailures,
		ProbeInterval:    cfg.ProbeInterval,
		MaxProbeInterval: cfg.MaxProbeInterval,
		StaleAfter:       cfg.StaleAfter,
		EvictAfter:       cfg.EvictAfter,
		Meter:            role.Meter,
		CPU:              role.CPU,
	}
}

// ResizeShards changes the shard-leader count to target and rebalances the
// fleet onto the new consistent-hash ring. Growing starts fresh leaders
// and drains their ring share onto them; shrinking installs the smaller
// ring first (so nothing routes to the doomed shards), drains each doomed
// shard's children to their new owners, then evicts and closes it. Per-
// shard capacity is re-split proportionally to the settled populations.
// Requires a standbys-free sharded deployment on the default placement.
func (c *Cluster) ResizeShards(ctx context.Context, target int) error {
	cfg := c.cfg
	switch {
	case c.Router == nil:
		return fmt.Errorf("cluster: not a sharded deployment")
	case cfg.Standbys > 0:
		return fmt.Errorf("cluster: shard resize requires standbys = 0")
	case cfg.Placement != nil:
		return fmt.Errorf("cluster: shard resize requires the default consistent-hash placement")
	case target < 1:
		return fmt.Errorf("cluster: need at least one shard, got %d", target)
	case target > len(c.Stages):
		return fmt.Errorf("cluster: %d stages cannot populate %d shards", len(c.Stages), target)
	}
	cur := c.Router.NumShards()
	if target == cur {
		return nil
	}

	groups := make([]*shard.Group, cur)
	for i := range groups {
		groups[i] = c.Router.Group(i)
	}

	if target > cur {
		for s := cur; s < target; s++ {
			role := Roles{Meter: &transport.Meter{}, CPU: &monitor.CPUMeter{}}
			gcfg := c.shardLeaderConfig(s, role)
			st, err := c.openStore(ShardHost(s))
			if err != nil {
				return err
			}
			gcfg.Store = st
			g, err := controller.NewGlobal(gcfg)
			if err != nil {
				if st != nil {
					st.Close()
				}
				return fmt.Errorf("cluster: grow shard %d: %w", s, err)
			}
			c.Globals = append(c.Globals, g)
			c.ShardRoles = append(c.ShardRoles, role)
			groups = append(groups, shard.NewGroup(g, nil, nil))
		}
		c.Router.SetGroups(groups, shard.Config{VirtualNodes: cfg.VirtualNodes})
		if _, err := c.Router.Rebalance(ctx); err != nil {
			return fmt.Errorf("cluster: rebalance onto %d shards: %w", target, err)
		}
	} else {
		victims := groups[target:]
		c.Router.SetGroups(groups[:target], shard.Config{VirtualNodes: cfg.VirtualNodes})
		for i, v := range victims {
			if _, err := c.Router.Drain(ctx, v); err != nil {
				return fmt.Errorf("cluster: drain shard %d: %w", target+i, err)
			}
			v.Leader().Close()
		}
		c.Globals = c.Globals[:target]
		c.ShardRoles = c.ShardRoles[:target]
	}

	// Re-split the administrator capacity over the settled populations.
	total := len(c.Stages)
	for i := 0; i < c.Router.NumShards(); i++ {
		g := c.Router.Group(i).Leader()
		g.SetCapacity(cfg.Capacity.Scale(float64(g.NumChildren()) / float64(total)))
	}
	return nil
}

// SetJobWeight re-tunes one job's QoS weight across the deployment's
// controllers; the next control cycle allocates with it.
func (c *Cluster) SetJobWeight(jobID uint64, weight float64) {
	if c.Global != nil {
		c.Global.SetJobWeight(jobID, weight)
	}
	for _, g := range c.Globals {
		g.SetJobWeight(jobID, weight)
	}
}
