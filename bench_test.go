// Benchmarks regenerating the paper's tables and figures as testing.B
// targets, plus ablations of the design choices DESIGN.md calls out.
//
// Each figure/table benchmark builds the corresponding deployment once per
// sub-benchmark and measures control cycles, reporting phase latencies and
// resource rates through b.ReportMetric. Node counts default to 1/20 of the
// paper's (500 nodes instead of 10,000) so `go test -bench=.` completes in
// minutes; set SDSCALE_BENCH_SCALE=1 to run the paper's sizes, or use
// `cmd/sdsbench` which defaults to paper scale and prints the formatted
// tables.
package sdscale_test

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"

	"github.com/dsrhaslab/sdscale"
	"github.com/dsrhaslab/sdscale/internal/cluster"
	"github.com/dsrhaslab/sdscale/internal/experiment"
	"github.com/dsrhaslab/sdscale/internal/top500"
	"github.com/dsrhaslab/sdscale/internal/transport"
	"github.com/dsrhaslab/sdscale/internal/transport/simnet"
)

// benchScale returns the node-count scale factor for benchmarks.
func benchScale() float64 {
	if s := os.Getenv("SDSCALE_BENCH_SCALE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 && v <= 1 {
			return v
		}
	}
	return 0.05
}

// benchCodec returns the cluster-wide codec cap for benchmarks:
// SDSCALE_BENCH_CODEC=v1 pins the legacy v1 wire codec, so an A/B pair of
// runs isolates what the varint/delta v2 codec contributes.
func benchCodec() int {
	if os.Getenv("SDSCALE_BENCH_CODEC") == "v1" {
		return 1
	}
	return 0
}

// scaled applies the benchmark scale to a paper node count.
func scaled(n int) int {
	s := int(float64(n) * benchScale())
	if s < 2 {
		s = 2
	}
	return s
}

// buildBench constructs a deployment for benchmarking. Paper benchmarks use
// the blocking fan-out mode, reproducing the prototype's bounded dispatch
// pool; BenchmarkFlatCycle compares it against the pipelined mode.
func buildBench(b *testing.B, cfg cluster.Config) *cluster.Cluster {
	b.Helper()
	if cfg.Net == (simnet.Config{}) {
		cfg.Net = experiment.DefaultNet()
	}
	cfg.FanOutMode = sdscale.FanOutBlocking
	c, err := cluster.Build(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(c.Close)
	return c
}

// runCycles measures b.N control cycles on a built cluster and reports
// phase latencies (ms) and network rates (MB/s) as benchmark metrics.
func runCycles(b *testing.B, c *cluster.Cluster) {
	b.Helper()
	ctx := context.Background()
	// Warmup.
	if _, err := c.RunControlCycle(ctx); err != nil {
		b.Fatal(err)
	}
	c.Recorder().Reset()
	uc := cluster.NewUsageCollector(c)

	b.ResetTimer()
	uc.Start()
	for i := 0; i < b.N; i++ {
		if _, err := c.RunControlCycle(ctx); err != nil {
			b.Fatal(err)
		}
	}
	global, agg, _ := uc.Stop()
	b.StopTimer()

	s := c.Recorder().Summarize()
	msOf := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	b.ReportMetric(msOf(s.Collect.Mean), "collect-ms")
	b.ReportMetric(msOf(s.Compute.Mean), "compute-ms")
	b.ReportMetric(msOf(s.Enforce.Mean), "enforce-ms")
	b.ReportMetric(msOf(s.Total.Mean), "cycle-ms")
	b.ReportMetric(global.TxMBps, "global-tx-MBps")
	b.ReportMetric(global.RxMBps, "global-rx-MBps")
	if len(c.Aggregators) > 0 || len(c.Peers) > 0 {
		b.ReportMetric(agg.TxMBps, "agg-tx-MBps")
		b.ReportMetric(agg.CPUPercent, "agg-cpu-pct")
	}
	b.ReportMetric(global.CPUPercent, "global-cpu-pct")
	b.ReportMetric(global.MemGB(), "global-mem-GB")
}

// BenchmarkTable1 regenerates the paper's Table I (a formatting benchmark:
// the dataset is static).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(top500.Table()) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFig4Flat regenerates Fig. 4: flat-design control-cycle latency
// by node count. One sub-benchmark per x-axis point.
func BenchmarkFig4Flat(b *testing.B) {
	for _, nodes := range experiment.FlatNodeCounts {
		n := scaled(nodes)
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
			c := buildBench(b, cluster.Config{Topology: cluster.Flat, Stages: n})
			runCycles(b, c)
		})
	}
}

// BenchmarkTable2FlatResources regenerates Table II: the flat global
// controller's resource utilization (reported as benchmark metrics).
func BenchmarkTable2FlatResources(b *testing.B) {
	n := scaled(2500)
	b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
		c := buildBench(b, cluster.Config{Topology: cluster.Flat, Stages: n})
		runCycles(b, c)
	})
}

// BenchmarkFig5Hierarchical regenerates Fig. 5: hierarchical latency at the
// paper's 10,000-node scale (scaled) by aggregator count.
func BenchmarkFig5Hierarchical(b *testing.B) {
	nodes := scaled(experiment.HierNodes)
	for _, aggs := range experiment.HierAggregatorCounts {
		b.Run(fmt.Sprintf("nodes=%d/aggs=%d", nodes, aggs), func(b *testing.B) {
			c := buildBench(b, cluster.Config{Topology: cluster.Hierarchical, Stages: nodes, Aggregators: aggs})
			runCycles(b, c)
		})
	}
}

// BenchmarkTable3HierResources regenerates Table III: per-role resource
// utilization in the hierarchy (metrics: global-*, agg-*).
func BenchmarkTable3HierResources(b *testing.B) {
	nodes := scaled(experiment.HierNodes)
	for _, aggs := range []int{4, 20} {
		b.Run(fmt.Sprintf("aggs=%d", aggs), func(b *testing.B) {
			c := buildBench(b, cluster.Config{Topology: cluster.Hierarchical, Stages: nodes, Aggregators: aggs, Jobs: 4})
			runCycles(b, c)
		})
	}
}

// BenchmarkFig6FlatVsHier regenerates Fig. 6: flat vs single-aggregator
// hierarchy at 2,500 (scaled) nodes.
func BenchmarkFig6FlatVsHier(b *testing.B) {
	nodes := scaled(experiment.CrossoverNodes)
	b.Run(fmt.Sprintf("flat/nodes=%d", nodes), func(b *testing.B) {
		c := buildBench(b, cluster.Config{Topology: cluster.Flat, Stages: nodes})
		runCycles(b, c)
	})
	b.Run(fmt.Sprintf("hier-1agg/nodes=%d", nodes), func(b *testing.B) {
		c := buildBench(b, cluster.Config{Topology: cluster.Hierarchical, Stages: nodes, Aggregators: 1})
		runCycles(b, c)
	})
}

// BenchmarkTable4FlatVsHierResources regenerates Table IV: per-role
// resource utilization for both designs at 2,500 (scaled) nodes.
func BenchmarkTable4FlatVsHierResources(b *testing.B) {
	nodes := scaled(experiment.CrossoverNodes)
	b.Run("flat", func(b *testing.B) {
		c := buildBench(b, cluster.Config{Topology: cluster.Flat, Stages: nodes, Jobs: 4})
		runCycles(b, c)
	})
	b.Run("hier-1agg", func(b *testing.B) {
		c := buildBench(b, cluster.Config{Topology: cluster.Hierarchical, Stages: nodes, Aggregators: 1, Jobs: 4})
		runCycles(b, c)
	})
}

// BenchmarkConnLimit regenerates the §IV-A observation: building a flat
// control plane right at the connection limit succeeds, and the failure
// past it is immediate. ns/op is the cost of a full at-limit build+teardown.
func BenchmarkConnLimit(b *testing.B) {
	const limit = 50
	net := experiment.DefaultNet()
	net.MaxConnsPerHost = limit
	for i := 0; i < b.N; i++ {
		c, err := cluster.Build(cluster.Config{Topology: cluster.Flat, Stages: limit, Net: net})
		if err != nil {
			b.Fatal(err)
		}
		c.Close()
		if _, err := cluster.Build(cluster.Config{Topology: cluster.Flat, Stages: limit + 1, Net: net}); err == nil {
			b.Fatal("build past the connection limit succeeded")
		}
	}
}

// BenchmarkAblationParallelFanout isolates DESIGN.md decision #1: the
// bounded fan-out pool at the global controller. Wider pools shorten the
// collect/enforce phases until the per-host processing model (or the
// machine) saturates.
func BenchmarkAblationParallelFanout(b *testing.B) {
	nodes := scaled(2500)
	for _, fanout := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("fanout=%d", fanout), func(b *testing.B) {
			c := buildBench(b, cluster.Config{Topology: cluster.Flat, Stages: nodes, FanOut: fanout})
			runCycles(b, c)
		})
	}
}

// BenchmarkAblationAggregation isolates DESIGN.md decision #2: aggregators
// pre-aggregating per-job metrics versus forwarding raw per-stage reports.
// Compare global-rx-MBps and global-cpu-pct between the two modes.
func BenchmarkAblationAggregation(b *testing.B) {
	nodes := scaled(experiment.HierNodes)
	for _, raw := range []bool{false, true} {
		name := "preaggregate"
		if raw {
			name = "forward-raw"
		}
		b.Run(name, func(b *testing.B) {
			c := buildBench(b, cluster.Config{
				Topology:    cluster.Hierarchical,
				Stages:      nodes,
				Aggregators: 4,
				Jobs:        4,
				ForwardRaw:  raw,
			})
			runCycles(b, c)
		})
	}
}

// BenchmarkAblationDelegation isolates the §VI delegated hierarchy: the
// global ships O(jobs) budgets instead of O(stages) rules and aggregators
// compute the rules locally. Compare global-tx-MBps and global-cpu-pct.
func BenchmarkAblationDelegation(b *testing.B) {
	nodes := scaled(experiment.HierNodes)
	for _, delegated := range []bool{false, true} {
		name := "central-rules"
		if delegated {
			name = "delegated-budgets"
		}
		b.Run(name, func(b *testing.B) {
			c := buildBench(b, cluster.Config{
				Topology:    cluster.Hierarchical,
				Stages:      nodes,
				Aggregators: 4,
				Jobs:        4,
				Delegated:   delegated,
			})
			runCycles(b, c)
		})
	}
}

// BenchmarkAblationAlgorithms compares control algorithms end to end
// (DESIGN.md decision #3): cycle latency is dominated by collect/enforce,
// so this shows algorithm choice is not the scalability bottleneck — the
// paper's premise for studying the control plane's structure instead.
func BenchmarkAblationAlgorithms(b *testing.B) {
	nodes := scaled(1250)
	for _, name := range []string{"psfa", "uniform", "weighted-static", "maxmin", "strict-priority"} {
		b.Run(name, func(b *testing.B) {
			alg, err := sdscale.NewAlgorithm(name)
			if err != nil {
				b.Fatal(err)
			}
			c := buildBench(b, cluster.Config{Topology: cluster.Flat, Stages: nodes, Algorithm: alg})
			runCycles(b, c)
		})
	}
}

// BenchmarkAblationProcModel quantifies what the per-host processing model
// adds over raw in-process execution (DESIGN.md §1 substitution table).
func BenchmarkAblationProcModel(b *testing.B) {
	nodes := scaled(2500)
	for _, model := range []struct {
		name string
		net  simnet.Config
	}{
		{"modeled", experiment.DefaultNet()},
		{"raw", simnet.Config{PropDelay: -1}},
	} {
		b.Run(model.name, func(b *testing.B) {
			c := buildBench(b, cluster.Config{Topology: cluster.Flat, Stages: nodes, Net: model.net})
			runCycles(b, c)
		})
	}
}

// BenchmarkFlatCycle measures the flat control cycle's dispatch cost at
// fixed fleet sizes, comparing the pipelined async fan-out against the
// prototype's bounded blocking pool. The network is raw (no modeled delays
// or processing costs, no connection limit), so ns/op and allocs/op isolate
// the RPC dispatch path itself: frame encoding, call bookkeeping, and
// goroutine scheduling. Run with -benchmem; BENCH_cycle.json records the
// results.
func BenchmarkFlatCycle(b *testing.B) {
	for _, nodes := range []int{1000, 5000, 10000} {
		for _, mode := range []sdscale.FanOutMode{sdscale.FanOutPipelined, sdscale.FanOutBlocking} {
			b.Run(fmt.Sprintf("%dk/%s", nodes/1000, mode), func(b *testing.B) {
				c := cachedBenchCluster(b, fmt.Sprintf("flat-%d-%s", nodes, mode), cluster.Config{
					Topology:   cluster.Flat,
					Stages:     nodes,
					FanOutMode: mode,
					MaxCodec:   benchCodec(),
					// Raw transport: disable the propagation/processing
					// model and the per-host connection limit (a flat
					// controller at 5k/10k exceeds the default 2,500).
					Net: simnet.Config{PropDelay: -1, MaxConnsPerHost: -1},
				})
				ctx := context.Background()
				if _, err := c.RunControlCycle(ctx); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := c.RunControlCycle(ctx); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
	// The converged, delta-quiet regime: constant demand with delta
	// enforcement, so after warmup the enforce fan-out vanishes and the
	// cycle is collects only — the best case for the v2 codec's delta-coded
	// floats and the reply-reuse decode path.
	b.Run("10k/steady", func(b *testing.B) {
		c := cachedBenchCluster(b, "flat-10k-steady", cluster.Config{
			Topology:         cluster.Flat,
			Stages:           10000,
			FanOutMode:       sdscale.FanOutPipelined,
			DeltaEnforcement: true,
			Workload:         sdscale.ConstantWorkload{Rates: sdscale.Rates{1000, 100}},
			MaxCodec:         benchCodec(),
			Net:              simnet.Config{PropDelay: -1, MaxConnsPerHost: -1},
		})
		ctx := context.Background()
		// A few warmup cycles reach quiescence (rules settle, then stop
		// flowing) before the measured window.
		for i := 0; i < 3; i++ {
			if _, err := c.RunControlCycle(ctx); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.RunControlCycle(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
	// Same converged regime, but on the event-driven incremental path: with
	// no stage pushing a delta and no membership change, the controller's
	// dirty-set stays empty and the whole collect/compute/enforce cycle is
	// skipped — the quiesced floor for the control plane's per-cycle cost.
	// The liveness floors are pinned far out: they are wall-clock timers
	// sized for seconds-long production cycle periods, and this loop runs
	// thousands of cycles per second, so a 1s heartbeat wave would land in
	// some measured windows and not others (under the v1 codec cap the
	// floors are moot — v1 children are force-collected every cycle, so the
	// variant degrades to the full paper-faithful cycle by design).
	b.Run("10k/quiesced-incremental", func(b *testing.B) {
		c := cachedBenchCluster(b, "flat-10k-quiesced", cluster.Config{
			Topology:         cluster.Flat,
			Stages:           10000,
			FanOutMode:       sdscale.FanOutPipelined,
			DeltaEnforcement: true,
			Incremental:      true,
			IncrementalFloor: time.Hour,
			PushFloor:        time.Hour,
			Workload:         sdscale.ConstantWorkload{Rates: sdscale.Rates{1000, 100}},
			MaxCodec:         benchCodec(),
			Net:              simnet.Config{PropDelay: -1, MaxConnsPerHost: -1},
		})
		ctx := context.Background()
		// Warmup: the first incremental cycle full-collects every
		// never-reported stage; the following ones converge the rules. The
		// first enforcement clamps every stage's usage, which its push loop
		// notices on its next ~100ms sample tick — so wait out the push
		// cadence and drain those one-time deltas before the timer starts,
		// leaving the fleet genuinely quiesced.
		for i := 0; i < 3; i++ {
			if _, err := c.RunControlCycle(ctx); err != nil {
				b.Fatal(err)
			}
		}
		time.Sleep(250 * time.Millisecond)
		for i := 0; i < 2; i++ {
			if _, err := c.RunControlCycle(ctx); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.RunControlCycle(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
	// The bursty regime between the full cycle and the quiesced floor: each
	// measured cycle, 10% of the fleet pushes a perturbed ReportDelta (the
	// scale alternates so the rules genuinely change), and the incremental
	// controller reacts — K-sized ingest, full-fleet compute from the arena,
	// K-sized delta enforce. This is the "effort proportional to
	// disturbance" row: bytes/op must track the 1,000-child dirty set, not
	// the 10,000-child fleet (under the v1 codec cap pushes are unsupported
	// and every child is force-collected, so the variant degrades to the
	// full paper-faithful cycle by design).
	b.Run("10k/bursty-10pct", func(b *testing.B) {
		c := cachedBenchCluster(b, "flat-10k-bursty", cluster.Config{
			Topology:         cluster.Flat,
			Stages:           10000,
			FanOutMode:       sdscale.FanOutPipelined,
			DeltaEnforcement: true,
			Incremental:      true,
			IncrementalFloor: time.Hour,
			PushFloor:        time.Hour,
			Workload:         sdscale.ConstantWorkload{Rates: sdscale.Rates{1000, 100}},
			MaxCodec:         benchCodec(),
			Net:              simnet.Config{PropDelay: -1, MaxConnsPerHost: -1},
		})
		ctx := context.Background()
		for i := 0; i < 3; i++ {
			if _, err := c.RunControlCycle(ctx); err != nil {
				b.Fatal(err)
			}
		}
		time.Sleep(250 * time.Millisecond)
		for i := 0; i < 2; i++ {
			if _, err := c.RunControlCycle(ctx); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			scale := 1.1 + 0.2*float64(i%2)
			for j := 0; j < len(c.Stages); j += 10 {
				c.Stages[j].PushDelta(scale)
			}
			if _, err := c.RunControlCycle(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
	// The quiesced-incremental regime with the durable write-ahead store
	// enabled: the steady state mutates nothing, so the WAL sits on the
	// mutation path without being exercised — the delta against
	// quiesced-incremental is durability's tax on the control plane's hot
	// loop (budgeted under 5% ns/op with zero added allocations;
	// BENCH_cycle.json gates it).
	b.Run("10k/quiesced-durable", func(b *testing.B) {
		c := cachedBenchCluster(b, "flat-10k-quiesced-durable", cluster.Config{
			Topology:         cluster.Flat,
			Stages:           10000,
			FanOutMode:       sdscale.FanOutPipelined,
			DeltaEnforcement: true,
			Incremental:      true,
			IncrementalFloor: time.Hour,
			PushFloor:        time.Hour,
			Workload:         sdscale.ConstantWorkload{Rates: sdscale.Rates{1000, 100}},
			MaxCodec:         benchCodec(),
			DataDir:          benchDataDir(b),
			Net:              simnet.Config{PropDelay: -1, MaxConnsPerHost: -1},
		})
		ctx := context.Background()
		for i := 0; i < 3; i++ {
			if _, err := c.RunControlCycle(ctx); err != nil {
				b.Fatal(err)
			}
		}
		time.Sleep(250 * time.Millisecond)
		for i := 0; i < 2; i++ {
			if _, err := c.RunControlCycle(ctx); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.RunControlCycle(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchClusters caches BenchmarkFlatCycle's and BenchmarkShardedCycle's
// fleets across the trial (b.N=1) and timed runs of one `go test` process —
// including `-count` repetitions: the testing package re-invokes the
// benchmark function per run, and rebuilding a 10,000- or 100,000-stage
// fleet each time would cost more than every measurement combined. The
// clusters are never closed — they live until process exit, which is also
// why each sub-benchmark re-runs its warmup/quiescing protocol on reuse
// (cheap once converged) instead of assuming pristine state.
var benchClusters = map[string]*cluster.Cluster{}

func cachedBenchCluster(b *testing.B, key string, cfg cluster.Config) *cluster.Cluster {
	b.Helper()
	if c, ok := benchClusters[key]; ok {
		return c
	}
	c, err := cluster.Build(cfg)
	if err != nil {
		b.Fatal(err)
	}
	benchClusters[key] = c
	return c
}

// benchWALDir is the process-lifetime data directory for the cached durable
// fleet. b.TempDir would be removed after the first run, pulling the WAL out
// from under the cached cluster on `-count` repetitions.
var benchWALDir string

func benchDataDir(b *testing.B) string {
	b.Helper()
	if benchWALDir == "" {
		d, err := os.MkdirTemp("", "sdscale-bench-wal-")
		if err != nil {
			b.Fatal(err)
		}
		benchWALDir = d
	}
	return benchWALDir
}

// BenchmarkShardedCycle measures the sharded control plane's whole-fleet
// cycle through the routing tier: every shard leader runs its cycle
// concurrently and the routed cycle's cost is the slowest shard, not the
// sum. The full variant at 10k children is the direct comparison against
// BenchmarkFlatCycle/10k/pipelined — same fleet, same cold full cycle, four
// leaders instead of one. The 100k quiesced-incremental variant is the
// scale target the single controller cannot reach at all (a 100k cold fan
// -out on one leader breaks the cycle-period budget outright): four shards
// of 25k children each in the converged event-driven regime, where the
// routed cycle is four concurrent dirty-set scans. BENCH_cycle.json records
// and gates both rows.
func BenchmarkShardedCycle(b *testing.B) {
	b.Run("10k/4shards/full", func(b *testing.B) {
		c := cachedBenchCluster(b, "sharded-10k-full", cluster.Config{
			Topology:   cluster.Flat,
			Stages:     10000,
			Shards:     4,
			FanOutMode: sdscale.FanOutPipelined,
			MaxCodec:   benchCodec(),
			Net:        simnet.Config{PropDelay: -1, MaxConnsPerHost: -1},
		})
		ctx := context.Background()
		if _, err := c.RunControlCycle(ctx); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.RunControlCycle(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("100k/4shards/quiesced-incremental", func(b *testing.B) {
		c := cachedBenchCluster(b, "sharded-100k-quiesced", cluster.Config{
			Topology:         cluster.Flat,
			Stages:           100000,
			Shards:           4,
			FanOutMode:       sdscale.FanOutPipelined,
			DeltaEnforcement: true,
			Incremental:      true,
			IncrementalFloor: time.Hour,
			PushFloor:        time.Hour,
			// In production the 100k stage-side push samplers run on 100k
			// separate compute nodes; at the default 100ms interval this
			// in-process fleet would take one million samples per second on
			// the benchmark host and the measurement would be sampler
			// scheduling, not the routed cycle. A long interval models
			// "stage CPU lives elsewhere" — the controllers' quiesced scan,
			// the quantity under measure, is unaffected (the workload is
			// constant, so the samplers would push nothing either way).
			PushInterval: time.Hour,
			Workload:     sdscale.ConstantWorkload{Rates: sdscale.Rates{1000, 100}},
			MaxCodec:     benchCodec(),
			Net:          simnet.Config{PropDelay: -1, MaxConnsPerHost: -1},
		})
		ctx := context.Background()
		// Same quiescing protocol as FlatCycle/10k/quiesced-incremental:
		// converge the rules, wait out the stages' push cadence, drain the
		// one-time clamp deltas.
		for i := 0; i < 3; i++ {
			if _, err := c.RunControlCycle(ctx); err != nil {
				b.Fatal(err)
			}
		}
		time.Sleep(250 * time.Millisecond)
		for i := 0; i < 2; i++ {
			if _, err := c.RunControlCycle(ctx); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.RunControlCycle(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFlatCycleTraced is BenchmarkFlatCycle's 1k configurations with
// span tracing enabled: the delta against the untraced run is the tracing
// overhead (budgeted under 2%; TestTracingOverheadUnderBudget enforces it).
func BenchmarkFlatCycleTraced(b *testing.B) {
	for _, mode := range []sdscale.FanOutMode{sdscale.FanOutPipelined, sdscale.FanOutBlocking} {
		b.Run(fmt.Sprintf("1k/%s", mode), func(b *testing.B) {
			c, err := cluster.Build(cluster.Config{
				Topology:   cluster.Flat,
				Stages:     1000,
				FanOutMode: mode,
				Tracing:    true,
				Net:        simnet.Config{PropDelay: -1, MaxConnsPerHost: -1},
			})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(c.Close)
			ctx := context.Background()
			if _, err := c.RunControlCycle(ctx); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.RunControlCycle(ctx); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRegistrationChurn measures dynamic membership: one stage
// registering with a live control plane per iteration (the HPC job churn
// the paper's §II motivates).
func BenchmarkRegistrationChurn(b *testing.B) {
	net := simnet.New(simnet.Config{})
	// The controller keeps one dialed connection per registered stage;
	// lift its connection limit so b.N can exceed 2,500 registrations
	// (this bench measures registration cost, not the §IV-A limit).
	net.Host("global").SetMaxConns(-1)
	g, err := sdscale.NewGlobal(sdscale.GlobalConfig{
		Network:    net.Host("global"),
		ListenAddr: ":0",
		Capacity:   sdscale.Rates{1e6, 1e5},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer g.Close()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		host := net.Host(fmt.Sprintf("stage-%d", i))
		v, err := sdscale.StartVirtualStage(sdscale.StageConfig{
			ID: uint64(i + 1), JobID: uint64(i%8 + 1), Weight: 1, Network: host,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := stageRegister(ctx, host, g.Addr(), v); err != nil {
			b.Fatal(err)
		}
	}
}

// stageRegister adapts the façade types to the stage registration helper.
func stageRegister(ctx context.Context, network transport.Network, addr string, v *sdscale.VirtualStage) error {
	return sdscale.RegisterStage(ctx, network, addr, v.Info())
}

// BenchmarkFutureCoordinatedFlat measures the paper's §VI future-work
// design — a coordinated flat control plane with peer controllers — at the
// 10,000-node (scaled) size, for comparison with BenchmarkFig5Hierarchical.
func BenchmarkFutureCoordinatedFlat(b *testing.B) {
	nodes := scaled(experiment.HierNodes)
	for _, peers := range []int{4, 20} {
		b.Run(fmt.Sprintf("nodes=%d/peers=%d", nodes, peers), func(b *testing.B) {
			c := buildBench(b, cluster.Config{Topology: cluster.Coordinated, Stages: nodes, Aggregators: peers})
			runCycles(b, c)
		})
	}
}

// BenchmarkAblationDeltaEnforcement quantifies skipping unchanged rules:
// under the stress workload demand never changes, so after the first cycle
// delta mode eliminates the enforce fan-out entirely — a bound on what the
// optimization saves for stable workloads (and exactly the behavior the
// paper's stress methodology intentionally avoids).
func BenchmarkAblationDeltaEnforcement(b *testing.B) {
	nodes := scaled(2500)
	for _, delta := range []bool{false, true} {
		name := "full-enforce"
		if delta {
			name = "delta-enforce"
		}
		b.Run(name, func(b *testing.B) {
			c := buildBench(b, cluster.Config{Topology: cluster.Flat, Stages: nodes, DeltaEnforcement: delta})
			runCycles(b, c)
		})
	}
}
