package experiment

import (
	"context"
	"strings"
	"testing"
)

// The SLO-elasticity scenario at reduced scale: doubling the fleet breaches
// the adaptive p90 objective, the loop grows the aggregator tier until
// latency recovers, and sustained headroom after the fleet subsides shrinks
// the tier back to its floor with zero rule loss.
func TestElasticReducedScale(t *testing.T) {
	if testing.Short() {
		t.Skip("elastic scenario drives ~40 measured control cycles")
	}
	o := testOptions(0.1) // 40-node floor, 2 -> 3 -> 2 aggregators
	for attempt := 1; attempt <= 2; attempt++ {
		r, err := Elastic(context.Background(), o)
		if err != nil && raceEnabled {
			// The detector's slowdown distorts the latency shapes the
			// decision loop keys on; the run itself (cycles, re-homing,
			// actuators) is what the detector needs to see.
			t.Skipf("elastic under -race: %v", err)
		}
		if err == nil {
			if cerr := CheckElastic(r); cerr != nil {
				if raceEnabled {
					t.Skipf("elastic shape under -race: %v", cerr)
				}
				t.Logf("attempt %d: %v", attempt, cerr)
				continue
			}
			var b strings.Builder
			o.Out = &b
			PrintElastic(o, r)
			out := b.String()
			for _, want := range []string{"elastic —", "slo", "tier", "window p90", "rule consistency"} {
				if !strings.Contains(out, want) {
					t.Errorf("elastic renderer output missing %q:\n%s", want, out)
				}
			}
			return
		}
		t.Logf("attempt %d: %v", attempt, err)
	}
	t.Fatal("elastic scenario failed both attempts")
}
