package tcpnet

import (
	"bytes"
	"context"
	"io"
	"testing"
	"time"
)

func TestLoopbackEcho(t *testing.T) {
	n := New()
	l, err := n.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer l.Close()

	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		io.Copy(c, c)
	}()

	c, err := n.Dial(context.Background(), l.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()

	msg := []byte("over real tcp")
	if _, err := c.Write(msg); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Errorf("echo = %q, want %q", got, msg)
	}
}

func TestDialTimeout(t *testing.T) {
	n := &Network{DialTimeout: 50 * time.Millisecond}
	// RFC 5737 TEST-NET-1 address: unroutable, so the dial must time out.
	start := time.Now()
	_, err := n.Dial(context.Background(), "192.0.2.1:9")
	if err == nil {
		t.Skip("unroutable address unexpectedly reachable in this environment")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("dial took %v despite 50ms timeout", elapsed)
	}
}

func TestDialRespectsContext(t *testing.T) {
	n := New()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := n.Dial(ctx, "192.0.2.1:9"); err == nil {
		t.Error("Dial with canceled context succeeded")
	}
}
