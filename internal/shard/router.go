package shard

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/dsrhaslab/sdscale/internal/controller"
	"github.com/dsrhaslab/sdscale/internal/telemetry"
	"github.com/dsrhaslab/sdscale/internal/wire"
)

// Group is one shard's controller group: the configured leader at index
// zero of members, followed by its quorum standbys. The group's effective
// leader moves when the shard fails over; Leader resolves it dynamically so
// the router keeps working through a promotion without being told.
type Group struct {
	members []*controller.Global
	// standbyAddrs is the registration-address list children walk when
	// re-homing, published in the shard table.
	standbyAddrs []string
}

// NewGroup builds a shard group from its configured leader and standbys.
// standbyAddrs may be nil when the shard runs without a quorum.
func NewGroup(leader *controller.Global, standbys []*controller.Global, standbyAddrs []string) *Group {
	members := append([]*controller.Global{leader}, standbys...)
	return &Group{members: members, standbyAddrs: standbyAddrs}
}

// Leader returns the shard's effective leader: the promoted standby with
// the highest epoch if the configured leader lost leadership, otherwise the
// configured leader itself. It never returns nil for a non-empty group —
// during the window where the leader is dead and no standby has promoted
// yet, the (doomed) configured leader is returned and callers see its
// calls fail, exactly as the shard's children do.
func (s *Group) Leader() *controller.Global {
	best := s.members[0]
	ok := !best.Deposed()
	for _, g := range s.members[1:] {
		if g.Promoted() && !g.Deposed() && (!ok || g.Epoch() > best.Epoch()) {
			best = g
			ok = true
		}
	}
	return best
}

// Members returns the group's controllers, configured leader first.
func (s *Group) Members() []*controller.Global { return s.members }

// Config parameterizes a Router.
type Config struct {
	// Placement overrides the consistent-hash ring: it must map every
	// child ID to a shard in [0, shards). Nil selects a Ring over the
	// group count.
	Placement func(childID uint64) int
	// VirtualNodes sets the default ring's granularity; see NewRing.
	VirtualNodes int
}

// routerState is the router's routing view — the group set and the
// placement function over it. It is immutable once published: SetGroups
// swaps in a whole new state, so cycle traffic loads one consistent
// (groups, placement) pair with a single atomic read and never sees a
// half-resized deployment.
type routerState struct {
	shards []*Group
	place  func(childID uint64) int
}

// Router is the thin routing tier over a sharded deployment's groups. It
// holds no child state of its own: placement is a pure function, ownership
// questions are answered by the shards, and handoff drives the controllers'
// existing re-homing + epoch-fencing machinery.
type Router struct {
	state atomic.Pointer[routerState]

	// moveMu serializes handoffs and group-set swaps: concurrent moves of
	// the same child from Rebalance and an operator would race
	// adopt/remove interleavings, and a resize must not interleave with a
	// half-done move. Cycle traffic never takes this lock.
	moveMu     sync.Mutex
	moves      atomic.Uint64
	rebalances atomic.Uint64
}

// NewRouter builds the routing tier over the given shard groups and
// installs the shard-table provider on every member, so any controller in
// the deployment answers ShardQuery with current routing metadata.
func NewRouter(shards []*Group, cfg Config) *Router {
	r := &Router{}
	r.install(shards, cfg)
	return r
}

// install publishes a new routing state and re-points every member's shard
// table at this router with its (possibly new) shard index.
func (r *Router) install(shards []*Group, cfg Config) {
	st := &routerState{shards: shards, place: cfg.Placement}
	if st.place == nil {
		ring := NewRing(len(shards), cfg.VirtualNodes)
		st.place = ring.Place
	}
	table := func(childID uint64) *wire.ShardMap { return r.describe(childID) }
	for i, s := range shards {
		for _, g := range s.members {
			g.SetShardTable(table, i)
		}
	}
	r.state.Store(st)
}

// SetGroups replaces the shard set live (an elastic resize). The new state
// — group list and placement — becomes visible to routing and cycles
// atomically; children still sitting on shards that moved in the ring are
// the caller's to drain with Rebalance. Groups present in the old set and
// not the new one are likewise the caller's to close, after Rebalance has
// emptied them.
func (r *Router) SetGroups(shards []*Group, cfg Config) {
	r.moveMu.Lock()
	defer r.moveMu.Unlock()
	r.install(shards, cfg)
}

// NumShards returns the shard count.
func (r *Router) NumShards() int { return len(r.state.Load().shards) }

// Group returns shard i's controller group.
func (r *Router) Group(i int) *Group { return r.state.Load().shards[i] }

// Place returns the shard that placement assigns childID to — where the
// child *should* live. See Route for where it actually lives.
func (r *Router) Place(childID uint64) int { return r.state.Load().place(childID) }

// Route returns the shard currently owning childID and its effective
// leader. Placement is checked first; during a rebalance (or after manual
// moves) a child may be elsewhere, so the other shards are consulted
// before giving up. An unknown child routes to its placement shard — the
// shard it would register with.
func (r *Router) Route(childID uint64) (int, *controller.Global) {
	return r.state.Load().route(childID)
}

func (st *routerState) route(childID uint64) (int, *controller.Global) {
	want := st.place(childID)
	if g := st.shards[want].Leader(); g != nil {
		if _, _, ok := g.ChildSnapshot(childID); ok {
			return want, g
		}
	}
	for i, s := range st.shards {
		if i == want {
			continue
		}
		if g := s.Leader(); g != nil {
			if _, _, ok := g.ChildSnapshot(childID); ok {
				return i, g
			}
		}
	}
	return want, st.shards[want].Leader()
}

// RunCycle runs one control cycle on every shard leader concurrently and
// merges the result: the deployment's phase latency is the slowest
// shard's (shards overlap, so maxima — not sums — are the wall-clock
// truth). Shards that fail contribute a wrapped error; the survivors'
// cycles still run and merge, because one shard's outage must not stall
// the rest of the fleet — that is the point of sharding.
func (r *Router) RunCycle(ctx context.Context) (telemetry.Breakdown, error) {
	shards := r.state.Load().shards
	bs := make([]telemetry.Breakdown, len(shards))
	errs := make([]error, len(shards))
	var wg sync.WaitGroup
	for i, s := range shards {
		wg.Add(1)
		go func(i int, s *Group) {
			defer wg.Done()
			bs[i], errs[i] = s.Leader().RunCycle(ctx)
		}(i, s)
	}
	wg.Wait()
	var err error
	for i, e := range errs {
		if e != nil && err == nil {
			err = fmt.Errorf("shard %d: %w", i, e)
		}
	}
	return telemetry.MergeMax(bs...), err
}

// EnforceUniform applies one per-job rule across every shard concurrently,
// each leader broadcasting it to its children over the marshal-once shared
// frame path. It returns the total number of stages that applied the rule.
func (r *Router) EnforceUniform(ctx context.Context, jobID uint64, action wire.RuleAction, limit wire.Rates) (int, error) {
	shards := r.state.Load().shards
	applied := make([]int, len(shards))
	errs := make([]error, len(shards))
	var wg sync.WaitGroup
	for i, s := range shards {
		wg.Add(1)
		go func(i int, s *Group) {
			defer wg.Done()
			applied[i], errs[i] = s.Leader().EnforceUniform(ctx, jobID, action, limit)
		}(i, s)
	}
	wg.Wait()
	var total int
	var err error
	for i := range shards {
		total += applied[i]
		if errs[i] != nil && err == nil {
			err = fmt.Errorf("shard %d: %w", i, errs[i])
		}
	}
	return total, err
}

// Move hands childID off to shard dst: the destination leader raises its
// epoch above the source's (persisted first, like a promotion), adopts the
// child with the rules the source last enforced, and only then does the
// source forget it. The child's next contact with the destination adopts
// the raised epoch as its fencing floor, so anything the source still has
// in flight — a straggling Enforce, a queued Collect — is rejected as
// stale. A push the child emits mid-move lands on whichever side still
// knows it; after the source's RemoveChild, only the destination does.
func (r *Router) Move(ctx context.Context, childID uint64, dst int) error {
	r.moveMu.Lock()
	defer r.moveMu.Unlock()
	return r.moveLocked(ctx, r.state.Load(), childID, dst)
}

// moveLocked is Move's body; the caller holds moveMu and pins the state
// the move routes against.
func (r *Router) moveLocked(ctx context.Context, st *routerState, childID uint64, dst int) error {
	if dst < 0 || dst >= len(st.shards) {
		return fmt.Errorf("shard: move child %d: no shard %d", childID, dst)
	}
	srcIdx, src := st.route(childID)
	if srcIdx == dst {
		return nil
	}
	info, rules, ok := src.ChildSnapshot(childID)
	if !ok {
		return fmt.Errorf("shard: move child %d: shard %d does not own it", childID, srcIdx)
	}
	dstLeader := st.shards[dst].Leader()
	dstLeader.RaiseEpoch(src.Epoch() + 1)
	if err := dstLeader.AdoptStage(ctx, info, rules); err != nil {
		return fmt.Errorf("shard: move child %d to shard %d: %w", childID, dst, err)
	}
	src.RemoveChild(childID)
	r.moves.Add(1)
	return nil
}

// Rebalance walks every shard's membership and moves each child whose
// placement disagrees with its current owner. It returns the number of
// children moved. Rebalance runs concurrently with control cycles — a
// shard's cycle simply sees the membership before or after each move — but
// concurrent Rebalance calls (and resizes) serialize on the router's move
// lock.
func (r *Router) Rebalance(ctx context.Context) (int, error) {
	r.moveMu.Lock()
	defer r.moveMu.Unlock()
	st := r.state.Load()
	moved := 0
	for i, s := range st.shards {
		g := s.Leader()
		if g == nil {
			continue
		}
		for _, id := range g.ChildIDs() {
			want := st.place(id)
			if want == i {
				continue
			}
			if err := r.moveLocked(ctx, st, id, want); err != nil {
				return moved, err
			}
			moved++
			if ctx.Err() != nil {
				return moved, ctx.Err()
			}
		}
	}
	r.rebalances.Add(1)
	return moved, nil
}

// Drain moves every child off shard src to wherever placement puts it —
// the emptying half of a shrink, run after SetGroups installed a ring that
// no longer maps anything to src. It returns the number of children moved.
func (r *Router) Drain(ctx context.Context, src *Group) (int, error) {
	r.moveMu.Lock()
	defer r.moveMu.Unlock()
	st := r.state.Load()
	g := src.Leader()
	if g == nil {
		return 0, nil
	}
	moved := 0
	for _, id := range g.ChildIDs() {
		dst := st.place(id)
		info, rules, ok := g.ChildSnapshot(id)
		if !ok {
			continue // re-homed away concurrently
		}
		dstLeader := st.shards[dst].Leader()
		dstLeader.RaiseEpoch(g.Epoch() + 1)
		if err := dstLeader.AdoptStage(ctx, info, rules); err != nil {
			return moved, fmt.Errorf("shard: drain child %d to shard %d: %w", id, dst, err)
		}
		g.RemoveChild(id)
		r.moves.Add(1)
		moved++
		if ctx.Err() != nil {
			return moved, ctx.Err()
		}
	}
	return moved, nil
}

// Stats is the router's merged view of the deployment.
type Stats struct {
	// Shards holds each shard leader's full stats snapshot, indexed by
	// shard. Fault and pipeline digests live here — they do not merge
	// meaningfully across shards.
	Shards []controller.ControllerStats
	// Children, Stages, Quarantined, CallErrors, Evictions, FencedCalls
	// and ReHomes are fleet-wide sums over the shards.
	Children    int
	Stages      int
	Quarantined int
	CallErrors  uint64
	Evictions   uint64
	FencedCalls uint64
	ReHomes     uint64
	// MaxEpoch is the highest leadership epoch any shard leads with.
	MaxEpoch uint64
	// Moves and Rebalances count completed child handoffs and rebalance
	// sweeps since the router was built.
	Moves      uint64
	Rebalances uint64
}

// Stats snapshots every shard leader and merges the fleet-wide counters.
func (r *Router) Stats() Stats {
	shards := r.state.Load().shards
	st := Stats{Shards: make([]controller.ControllerStats, len(shards))}
	for i, s := range shards {
		cs := s.Leader().Stats()
		st.Shards[i] = cs
		st.Children += cs.Children
		st.Stages += cs.Stages
		st.Quarantined += cs.Quarantined
		st.CallErrors += cs.CallErrors
		st.Evictions += cs.Evictions
		st.FencedCalls += cs.FencedCalls
		st.ReHomes += cs.ReHomes
		if cs.Epoch > st.MaxEpoch {
			st.MaxEpoch = cs.Epoch
		}
	}
	st.Moves = r.moves.Load()
	st.Rebalances = r.rebalances.Load()
	return st
}

// Describe returns the deployment's shard table — the routing metadata a
// ShardQuery answer carries.
func (r *Router) Describe() *wire.ShardMap { return r.describe(0) }

// describe builds a fresh ShardMap (handlers overlay their own epoch on the
// reply, so the map must not be shared). childID nonzero also resolves the
// owning shard.
func (r *Router) describe(childID uint64) *wire.ShardMap {
	st := r.state.Load()
	mp := &wire.ShardMap{Entries: make([]wire.ShardEntry, len(st.shards))}
	for i, s := range st.shards {
		g := s.Leader()
		mp.Entries[i] = wire.ShardEntry{
			Index:    uint64(i),
			Epoch:    g.Epoch(),
			Children: uint64(g.NumChildren()),
			Addr:     g.Addr(),
			Standbys: s.standbyAddrs,
		}
	}
	if childID != 0 {
		owner, _ := st.route(childID)
		mp.Owner = uint64(owner)
		mp.OwnerValid = true
	}
	return mp
}
