package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/dsrhaslab/sdscale/internal/wire"
)

func testOptions(t *testing.T) Options {
	t.Helper()
	return Options{
		Dir:           t.TempDir(),
		FsyncInterval: time.Millisecond,
		NoFsync:       true,
		Logf:          t.Logf,
	}
}

func mustOpen(t *testing.T, opts Options) *Store {
	t.Helper()
	s, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func stageMember(id, job uint64) wire.MemberState {
	return wire.MemberState{
		Role:   wire.RoleStage,
		ID:     id,
		JobID:  job,
		Weight: float64(job),
		Addr:   fmt.Sprintf("10.0.0.%d:7000", id),
	}
}

func rule(stage, job uint64, limit float64) wire.Rule {
	return wire.Rule{
		StageID: stage,
		JobID:   job,
		Action:  wire.ActionSetLimit,
		Limit:   wire.Rates{limit, limit / 10},
	}
}

// seedStore appends a representative mutation history and returns the
// store still open.
func seedStore(t *testing.T, s *Store) {
	t.Helper()
	for id := uint64(1); id <= 3; id++ {
		if err := s.AppendRegister(stageMember(id, id%2+1)); err != nil {
			t.Fatalf("AppendRegister: %v", err)
		}
	}
	agg := wire.MemberState{
		Role: wire.RoleAggregator, ID: 100, Addr: "10.0.1.1:7000",
		Stages: []wire.StageEntry{{ID: 1, JobID: 2, Weight: 2, Addr: "10.0.0.1:7000"}},
	}
	if err := s.AppendRegister(agg); err != nil {
		t.Fatalf("AppendRegister agg: %v", err)
	}
	if err := s.AppendWeight(1, 2.5); err != nil {
		t.Fatalf("AppendWeight: %v", err)
	}
	if err := s.AppendWeight(2, 1.5); err != nil {
		t.Fatalf("AppendWeight: %v", err)
	}
	for id := uint64(1); id <= 3; id++ {
		if err := s.AppendRules(7, id, []wire.Rule{rule(id, id%2+1, 1000*float64(id))}); err != nil {
			t.Fatalf("AppendRules: %v", err)
		}
	}
	if err := s.AppendEvict(3); err != nil {
		t.Fatalf("AppendEvict: %v", err)
	}
	if err := s.AppendEpoch(4); err != nil {
		t.Fatalf("AppendEpoch: %v", err)
	}
	if err := s.AppendVote(5); err != nil {
		t.Fatalf("AppendVote: %v", err)
	}
	if err := s.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
}

// checkSeeded asserts the state seedStore built.
func checkSeeded(t *testing.T, rec Recovered) {
	t.Helper()
	if rec.Epoch != 4 || rec.VotedEpoch != 5 || rec.Cycle != 7 {
		t.Fatalf("epoch/voted/cycle = %d/%d/%d, want 4/5/7", rec.Epoch, rec.VotedEpoch, rec.Cycle)
	}
	if got := len(rec.State.Members); got != 3 { // stages 1,2 + aggregator 100; 3 evicted
		t.Fatalf("members = %d, want 3", got)
	}
	byID := map[uint64]wire.MemberState{}
	for _, m := range rec.State.Members {
		byID[m.ID] = m
	}
	if _, ok := byID[3]; ok {
		t.Fatalf("evicted member 3 still present")
	}
	m1 := byID[1]
	if len(m1.Rules) != 1 || m1.Rules[0].Limit[0] != 1000 {
		t.Fatalf("member 1 rules = %+v, want one rule limit 1000", m1.Rules)
	}
	if byID[100].Role != wire.RoleAggregator || len(byID[100].Stages) != 1 {
		t.Fatalf("aggregator state = %+v", byID[100])
	}
	if len(rec.State.Weights) != 2 || rec.State.Weights[0].Weight != 2.5 {
		t.Fatalf("weights = %+v", rec.State.Weights)
	}
}

func TestRoundtripRestart(t *testing.T) {
	opts := testOptions(t)
	s := mustOpen(t, opts)
	seedStore(t, s)
	live := s.Recovered()
	checkSeeded(t, live)
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2 := mustOpen(t, opts)
	defer s2.Close()
	rec := s2.Recovered()
	checkSeeded(t, rec)
	if !reflect.DeepEqual(live, rec) {
		t.Fatalf("recovered state differs from live state\nlive: %+v\nrec:  %+v", live, rec)
	}
	st := s2.Stats()
	if st.Replay.Records == 0 || st.Replay.HadSnapshot {
		t.Fatalf("replay stats = %+v, want records>0 and no snapshot", st.Replay)
	}
}

func TestTornTailTruncated(t *testing.T) {
	opts := testOptions(t)
	s := mustOpen(t, opts)
	seedStore(t, s)
	want := s.Recovered()
	// A record after the known-good prefix, then a crash mid-write.
	if err := s.AppendWeight(9, 9.9); err != nil {
		t.Fatalf("AppendWeight: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	path := filepath.Join(opts.Dir, logFile)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the last record: drop its final 3 bytes.
	if err := os.WriteFile(path, raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, opts)
	defer s2.Close()
	st := s2.Stats()
	if st.Replay.TruncatedBytes == 0 {
		t.Fatalf("replay = %+v, want TruncatedBytes > 0", st.Replay)
	}
	rec := s2.Recovered()
	checkSeeded(t, rec)
	if !reflect.DeepEqual(want, rec) {
		t.Fatalf("state after torn-tail truncation differs\nwant: %+v\ngot:  %+v", want, rec)
	}
	// The truncation must be durable: a third open sees a clean log.
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3 := mustOpen(t, opts)
	defer s3.Close()
	if tr := s3.Stats().Replay.TruncatedBytes; tr != 0 {
		t.Fatalf("second open still truncates %d bytes", tr)
	}
}

func TestCorruptRecordMidLogStopsReplay(t *testing.T) {
	opts := testOptions(t)
	s := mustOpen(t, opts)
	// Three epoch bumps; we will corrupt the middle one.
	for e := uint64(1); e <= 3; e++ {
		if err := s.AppendEpoch(e); err != nil {
			t.Fatalf("AppendEpoch: %v", err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(opts.Dir, logFile)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Records are identical length; flip a payload byte in the second.
	recLen := len(raw) / 3
	raw[recLen+frameHeaderLen] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, opts)
	defer s2.Close()
	st := s2.Stats()
	if st.Replay.Records != 1 {
		t.Fatalf("replayed %d records, want 1 (stop at corruption)", st.Replay.Records)
	}
	if st.Replay.TruncatedBytes != int64(2*recLen) {
		t.Fatalf("truncated %d bytes, want %d", st.Replay.TruncatedBytes, 2*recLen)
	}
	if rec := s2.Recovered(); rec.Epoch != 1 {
		t.Fatalf("epoch = %d, want 1 (only the pre-corruption prefix)", rec.Epoch)
	}
}

func TestSnapshotNewerThanLog(t *testing.T) {
	opts := testOptions(t)
	s := mustOpen(t, opts)
	seedStore(t, s)
	// Keep the pre-compaction log: these records' LSNs will all be below
	// the snapshot watermark, exactly what a crash between snapshot rename
	// and log truncation leaves behind.
	logPath := filepath.Join(opts.Dir, logFile)
	oldLog, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(oldLog) == 0 {
		t.Fatal("expected a non-empty pre-compaction log")
	}
	if err := s.compactNow(); err != nil {
		t.Fatalf("compact: %v", err)
	}
	want := s.Recovered()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Restore the stale log next to the newer snapshot.
	if err := os.WriteFile(logPath, oldLog, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, opts)
	defer s2.Close()
	st := s2.Stats()
	if !st.Replay.HadSnapshot {
		t.Fatal("no snapshot loaded")
	}
	if st.Replay.Skipped == 0 || st.Replay.Records != 0 {
		t.Fatalf("replay = %+v, want all records skipped below watermark", st.Replay)
	}
	rec := s2.Recovered()
	checkSeeded(t, rec)
	if !reflect.DeepEqual(want, rec) {
		t.Fatalf("state with stale log differs from snapshot state\nwant: %+v\ngot:  %+v", want, rec)
	}
}

func TestReplayIdempotence(t *testing.T) {
	opts := testOptions(t)
	s := mustOpen(t, opts)
	seedStore(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Open/close repeatedly without mutating: every replay must converge
	// to the same state and never re-truncate.
	var prev Recovered
	for i := 0; i < 3; i++ {
		si := mustOpen(t, opts)
		rec := si.Recovered()
		if i > 0 && !reflect.DeepEqual(prev, rec) {
			t.Fatalf("replay %d diverged\nprev: %+v\ngot:  %+v", i, prev, rec)
		}
		prev = rec
		if err := si.Close(); err != nil {
			t.Fatal(err)
		}
	}
	checkSeeded(t, prev)

	// Doubled log: append the same records twice (snapshot-overlap shape,
	// same LSNs). Replay must converge to the single-replay state.
	path := filepath.Join(opts.Dir, logFile)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(raw, raw...), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, opts)
	defer s2.Close()
	rec := s2.Recovered()
	if !reflect.DeepEqual(prev, rec) {
		t.Fatalf("double replay diverged\nwant: %+v\ngot:  %+v", prev, rec)
	}
}

func TestCompactionPreservesState(t *testing.T) {
	opts := testOptions(t)
	s := mustOpen(t, opts)
	seedStore(t, s)
	want := s.Recovered()
	if err := s.compactNow(); err != nil {
		t.Fatalf("compact: %v", err)
	}
	st := s.Stats()
	if st.Snapshots != 1 || st.LogRecords != 0 || st.LogBytes != 0 {
		t.Fatalf("post-compaction stats = %+v", st)
	}
	if rec := s.Recovered(); !reflect.DeepEqual(want, rec) {
		t.Fatalf("compaction changed live state")
	}
	// Mutations after the compaction land in the fresh log segment.
	if err := s.AppendWeight(2, 9.0); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, opts)
	defer s2.Close()
	rec := s2.Recovered()
	if !hasWeight(rec.State, 2, 9.0) {
		t.Fatalf("post-compaction weight lost: %+v", rec.State.Weights)
	}
	if rec.Epoch != want.Epoch || len(rec.State.Members) != len(want.State.Members) {
		t.Fatalf("snapshot state lost: %+v", rec)
	}
}

func hasWeight(ss *wire.StateSync, job uint64, w float64) bool {
	for _, jw := range ss.Weights {
		if jw.JobID == job && jw.Weight == w {
			return true
		}
	}
	return false
}

func TestCorruptSnapshotIsHardError(t *testing.T) {
	opts := testOptions(t)
	s := mustOpen(t, opts)
	seedStore(t, s)
	if err := s.compactNow(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(opts.Dir, snapshotFile)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(opts); err == nil {
		t.Fatal("Open accepted a corrupt snapshot; state would be silently lost")
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	s := mustOpen(t, testOptions(t))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendWeight(1, 1); err != ErrClosed {
		t.Fatalf("append after close = %v, want ErrClosed", err)
	}
}

func TestInspect(t *testing.T) {
	opts := testOptions(t)
	s := mustOpen(t, opts)
	seedStore(t, s)
	if err := s.compactNow(); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendEpoch(6); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := Inspect(opts.Dir, &b); err != nil {
		t.Fatalf("Inspect: %v", err)
	}
	out := b.String()
	for _, want := range []string{"snapshot:", "epoch 4", "voted 5", "log:", "lsn=", "epoch 6", "clean tail"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Inspect output missing %q:\n%s", want, out)
		}
	}
	// Torn tail reported, not fatal.
	logPath := filepath.Join(opts.Dir, logFile)
	raw, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(logPath, raw[:len(raw)-2], 0o644); err != nil {
		t.Fatal(err)
	}
	b.Reset()
	if err := Inspect(opts.Dir, &b); err != nil {
		t.Fatalf("Inspect torn: %v", err)
	}
	if !strings.Contains(b.String(), "TORN") {
		t.Fatalf("Inspect did not flag the torn tail:\n%s", b.String())
	}
}

// TestConcurrentAppendCompactStress hammers the store from many goroutines
// while compaction thresholds are tuned low enough that the flusher
// compacts repeatedly mid-traffic. Run under -race this doubles as the
// locking proof; afterwards a cold reopen must see every acknowledged
// durable write and a consistent final state.
func TestConcurrentAppendCompactStress(t *testing.T) {
	opts := testOptions(t)
	opts.SnapshotEvery = 64 // compact constantly
	s := mustOpen(t, opts)

	const (
		writers = 8
		perG    = 200
	)
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			id := uint64(g + 1)
			for i := 0; i < perG; i++ {
				switch i % 4 {
				case 0:
					if err := s.AppendRegister(stageMember(id, id)); err != nil {
						t.Errorf("register: %v", err)
						return
					}
				case 1:
					if err := s.AppendRules(uint64(i), id, []wire.Rule{rule(id, id, float64(i))}); err != nil {
						t.Errorf("rules: %v", err)
						return
					}
				case 2:
					if err := s.AppendWeight(id, float64(i)); err != nil {
						t.Errorf("weight: %v", err)
						return
					}
				case 3:
					// Durable appends interleave waitDurable with the
					// flusher's compactions.
					if err := s.AppendEpoch(uint64(i)); err != nil {
						t.Errorf("epoch: %v", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if err := s.Sync(); err != nil {
		t.Fatalf("final Sync: %v", err)
	}
	want := s.Recovered()
	st := s.Stats()
	if st.Snapshots == 0 {
		t.Fatalf("no compactions ran (stats %+v); stress did not exercise the race", st)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2 := mustOpen(t, opts)
	defer s2.Close()
	rec := s2.Recovered()
	if !reflect.DeepEqual(want, rec) {
		t.Fatalf("reopened state differs from pre-close state")
	}
	if len(rec.State.Members) != writers {
		t.Fatalf("members = %d, want %d", len(rec.State.Members), writers)
	}
	if rec.Epoch != perG-1 {
		t.Fatalf("epoch = %d, want %d", rec.Epoch, perG-1)
	}
}
