package experiment

import (
	"context"
	"errors"
	"fmt"

	"github.com/dsrhaslab/sdscale/internal/cluster"
	"github.com/dsrhaslab/sdscale/internal/controller"
	"github.com/dsrhaslab/sdscale/internal/telemetry"
)

// PipelineNodes is the flat scale the pipelined-dispatch comparison runs at:
// the paper's flat-design maximum, where the bounded pool's linear latency
// growth (Fig. 4) is at its worst.
const PipelineNodes = 2500

// PipelineResult compares the two fan-out dispatch modes on otherwise
// identical flat deployments.
type PipelineResult struct {
	// Blocking and Pipelined are the per-mode measurements.
	Blocking, Pipelined Result
	// BlockingPipe and PipelinedPipe are the controllers' fan-out
	// telemetry: per-phase in-flight peaks and per-cycle allocation counts.
	BlockingPipe, PipelinedPipe telemetry.PipelineSnapshot
}

// Pipeline measures what the asynchronous pipelined dispatch buys over the
// paper prototype's bounded blocking pool: two identical flat deployments —
// one per FanOutMode — run interleaved cycles (like Fig. 6) so host drift
// hits both equally, and the controllers' pipeline telemetry records
// per-cycle allocations and in-flight peaks alongside the usual latency
// breakdown.
func Pipeline(ctx context.Context, o Options) (PipelineResult, error) {
	o = o.withDefaults()
	nodes := o.scaled(PipelineNodes)

	build := func(mode controller.FanOutMode) (*cluster.Cluster, error) {
		return cluster.Build(cluster.Config{
			Topology:   cluster.Flat,
			Stages:     nodes,
			Jobs:       o.Jobs,
			Net:        *o.Net,
			FanOutMode: mode,
		})
	}
	blocking, err := build(controller.FanOutBlocking)
	if err != nil {
		return PipelineResult{}, fmt.Errorf("experiment pipeline: %w", err)
	}
	defer blocking.Close()
	pipelined, err := build(controller.FanOutPipelined)
	if err != nil {
		return PipelineResult{}, fmt.Errorf("experiment pipeline: %w", err)
	}
	defer pipelined.Close()

	results, err := o.measure(ctx, []*cluster.Cluster{blocking, pipelined})
	if err != nil {
		return PipelineResult{}, fmt.Errorf("experiment pipeline: %w", err)
	}
	res := PipelineResult{Blocking: results[0], Pipelined: results[1]}
	res.Blocking.Name = fmt.Sprintf("blocking-%d", nodes)
	res.Pipelined.Name = fmt.Sprintf("pipelined-%d", nodes)
	res.BlockingPipe = blocking.Global.Stats().Pipeline
	res.PipelinedPipe = pipelined.Global.Stats().Pipeline
	return res, nil
}

// PrintPipeline renders the dispatch-mode comparison.
func PrintPipeline(o Options, res PipelineResult) {
	o = o.withDefaults()
	o.printf("pipelined fan-out vs the prototype's bounded blocking pool — flat, %d nodes\n", res.Blocking.Nodes)
	o.printf("%-16s %12s %12s %12s %12s %14s %10s\n",
		"dispatch", "collect", "compute", "enforce", "total", "allocs/cycle", "in-flight")
	for _, row := range []struct {
		name string
		r    Result
		p    telemetry.PipelineSnapshot
	}{
		{"blocking", res.Blocking, res.BlockingPipe},
		{"pipelined", res.Pipelined, res.PipelinedPipe},
	} {
		o.printf("%-16s %12s %12s %12s %12s %14.0f %10d\n",
			row.name, ms(row.r.Latency.Collect.Mean), ms(row.r.Latency.Compute.Mean),
			ms(row.r.Latency.Enforce.Mean), ms(row.r.Latency.Total.Mean),
			row.p.MeanCycleAllocs, row.p.CollectInFlightPeak)
	}
	if b, p := res.BlockingPipe.MeanCycleAllocs, res.PipelinedPipe.MeanCycleAllocs; b > 0 {
		o.printf("\npipelined dispatch allocates %.1f%% fewer heap objects per cycle\n", 100*(1-p/b))
	}
	o.printf("(in-flight is the collect phase's peak concurrent calls: the blocking pool\n")
	o.printf(" is capped at its FanOut bound, the pipelined path streams to every child)\n\n")
}

// CheckPipelineWorks asserts the structural claims at any scale: both modes
// complete cycles and the pipelined dispatch actually pipelines — its
// in-flight peak exceeds the blocking pool's bound.
func CheckPipelineWorks(res PipelineResult) error {
	if res.Blocking.Latency.Cycles == 0 || res.Pipelined.Latency.Cycles == 0 {
		return errors.New("pipeline: a mode completed no cycles")
	}
	if res.BlockingPipe.CollectInFlightPeak > int64(controller.DefaultFanOut) {
		return fmt.Errorf("pipeline: blocking mode reached %d in-flight calls, above its %d bound",
			res.BlockingPipe.CollectInFlightPeak, controller.DefaultFanOut)
	}
	if res.PipelinedPipe.CollectInFlightPeak <= int64(controller.DefaultFanOut) {
		return fmt.Errorf("pipeline: pipelined mode peaked at %d in-flight calls, within the blocking bound %d — not pipelining",
			res.PipelinedPipe.CollectInFlightPeak, controller.DefaultFanOut)
	}
	return nil
}

// CheckPipeline adds the performance claims to CheckPipelineWorks: the
// pipelined dispatch allocates less per cycle and completes cycles at least
// as fast as the blocking pool.
func CheckPipeline(res PipelineResult) error {
	if err := CheckPipelineWorks(res); err != nil {
		return err
	}
	if res.PipelinedPipe.MeanCycleAllocs >= res.BlockingPipe.MeanCycleAllocs {
		return fmt.Errorf("pipeline: pipelined mode allocates more per cycle (%.0f) than blocking (%.0f)",
			res.PipelinedPipe.MeanCycleAllocs, res.BlockingPipe.MeanCycleAllocs)
	}
	if res.Pipelined.Latency.Total.Mean > res.Blocking.Latency.Total.Mean {
		return fmt.Errorf("pipeline: pipelined cycles (%v mean) slower than blocking (%v mean)",
			res.Pipelined.Latency.Total.Mean, res.Blocking.Latency.Total.Mean)
	}
	return nil
}
