package experiment

import (
	"fmt"
	"strings"
	"time"
)

// ResultsCSVHeader is the header row matching ResultsCSV.
const ResultsCSVHeader = "name,topology,nodes,aggregators,cycles," +
	"collect_ms,compute_ms,enforce_ms,total_ms,total_p50_ms,total_p95_ms,rel_std_pct," +
	"global_cpu_pct,global_mem_gb,global_tx_mbps,global_rx_mbps," +
	"agg_cpu_pct,agg_mem_gb,agg_tx_mbps,agg_rx_mbps,elapsed_s"

// ResultsCSV renders results as CSV rows (without header), one per
// configuration, for plotting pipelines.
func ResultsCSV(results []Result) string {
	var b strings.Builder
	msF := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	for _, r := range results {
		fmt.Fprintf(&b, "%s,%s,%d,%d,%d,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.2f,%.4f,%.6f,%.4f,%.4f,%.4f,%.6f,%.4f,%.4f,%.2f\n",
			r.Name, r.Topology, r.Nodes, r.Aggregators, r.Latency.Cycles,
			msF(r.Latency.Collect.Mean), msF(r.Latency.Compute.Mean),
			msF(r.Latency.Enforce.Mean), msF(r.Latency.Total.Mean),
			msF(r.Latency.Total.P50), msF(r.Latency.Total.P95),
			100*r.Latency.RelStddev(),
			r.Global.CPUPercent, r.Global.MemGB(), r.Global.TxMBps, r.Global.RxMBps,
			r.Aggregator.CPUPercent, r.Aggregator.MemGB(), r.Aggregator.TxMBps, r.Aggregator.RxMBps,
			r.Elapsed.Seconds())
	}
	return b.String()
}
